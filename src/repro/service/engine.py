"""The worker-pool slicing engine.

The engine is the service's single entry point: every surface (HTTP
handler, ``slang batch``, library callers) hands it protocol requests
and gets protocol envelopes back.  It owns the content-addressed
:class:`AnalysisCache` — so the expensive, criterion-independent
analyses are built once per program — and a ``ThreadPoolExecutor`` that
fans batches of criteria out over those shared analyses.

Every algorithm reachable through :mod:`repro.slicing.registry` is
servable.  Structured-only algorithms (Figs. 12/13) are rejected up
front on programs with unstructured jumps, with a structured
``slice-error`` payload pointing the client at ``GET /algorithms`` for
capability discovery.

The module-level ``perform_*`` builders are the single-threaded cores;
the CLI's ``--json`` mode calls them directly so its output is
byte-identical to the server's.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.lexical import is_structured_program
from repro.lang.errors import SlangError, SliceError
from repro.metrics import output_criteria, slice_based_metrics
from repro.obs.tracer import (
    Tracer,
    phase_totals,
    span_tree,
    trace_event,
    trace_span,
    use_tracer,
)
from repro.pdg.builder import ProgramAnalysis
from repro.service.cache import (
    AnalysisCache,
    SliceCacheStats,
    SliceMemo,
    analysis_key,
)
from repro.service.incremental import (
    incremental_enabled,
    unit_fingerprints,
    units_digest,
)
from repro.service.store import (
    DurableStore,
    payload_store_key,
    units_store_key,
)
from repro.lint.rules import run_lint
from repro.service.faults import FaultPlan, InjectedFaultError
from repro.service.protocol import (
    CheckRequest,
    CompareRequest,
    GraphRequest,
    MetricsRequest,
    ProtocolError,
    ServiceRequest,
    SliceRequest,
    error_envelope,
    error_payload,
    ok_envelope,
    request_from_dict,
    slice_result_payload,
)
from repro.service.resilience import (
    AdmissionGate,
    Budget,
    BudgetExceededError,
    EngineLimits,
    OverloadedError,
    RetryPolicy,
    current_budget,
    use_budget,
)
from repro.service.stats import ServiceStats
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.registry import (
    CORRECT_STRUCTURED,
    algorithm_names,
    get_algorithm,
)
from repro.viz.dot import render_all

#: ``graph`` request ``kind`` → :func:`render_all` key.
GRAPH_KINDS = {
    "cfg": "flowgraph",
    "pdt": "postdominator-tree",
    "cdg": "control-dependence",
    "lst": "lexical-successor-tree",
    "ddg": "data-dependence",
    "pdg": "pdg",
}


def check_algorithm_capability(
    analysis: ProgramAnalysis, algorithm: str
) -> None:
    """Reject structured-only algorithms on unstructured programs.

    Raises :class:`SliceError` (mapped to a structured ``slice-error``
    payload) instead of letting Fig. 12/13 preconditions surface as a
    mid-slice traceback; clients can avoid the round trip by checking
    ``GET /algorithms`` first.
    """
    get_algorithm(algorithm)  # raises ValueError for unknown names
    if analysis.program.procs and algorithm != "interprocedural":
        raise SliceError(
            f"algorithm {algorithm!r} sees one procedure at a time and "
            "this program declares procedures; only 'interprocedural' "
            "slices across calls (see /algorithms for capabilities)"
        )
    if algorithm in CORRECT_STRUCTURED and not is_structured_program(
        analysis.cfg, analysis.lst
    ):
        raise SliceError(
            f"algorithm {algorithm!r} is structured-only and this "
            "program contains unstructured jumps; use a correct-general "
            "algorithm (see /algorithms for capabilities)"
        )


def perform_slice(
    analysis: ProgramAnalysis,
    line: int,
    var: str,
    algorithm: str,
    proc: Optional[str] = None,
) -> Dict[str, Any]:
    """One slice as a protocol result payload (shared by CLI and server)."""
    check_algorithm_capability(analysis, algorithm)
    slicer = get_algorithm(algorithm)
    result = slicer(analysis, SlicingCriterion(line=line, var=var, proc=proc))
    return slice_result_payload(result)


def perform_compare(
    analysis: ProgramAnalysis, line: int, var: str
) -> Dict[str, Any]:
    """Every algorithm on one criterion; refusals become inline error
    rows rather than failing the whole request."""
    criterion = SlicingCriterion(line=line, var=var)
    rows: List[Dict[str, Any]] = []
    for name in algorithm_names():
        try:
            check_algorithm_capability(analysis, name)
            result = get_algorithm(name)(analysis, criterion)
        except SlangError as error:
            rows.append(
                {"name": name, "ok": False, "error": error_payload(error)}
            )
            continue
        rows.append(
            {"name": name, "ok": True, "slice": slice_result_payload(result)}
        )
    return {
        "criterion": {"line": line, "var": var},
        "algorithms": rows,
    }


def perform_check(
    source: str,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Lint one program as a protocol result payload.

    Shared verbatim by ``slang check --format json`` and ``POST
    /check`` so the two are byte-identical.  Takes raw *source* (not an
    analysis): the linter must report on programs the analysis cache
    refuses — syntax errors become SL001 diagnostics, and SL107
    programs have no postdominator tree.
    """
    return run_lint(source, select=select, ignore=ignore).payload()


def perform_graph(analysis: ProgramAnalysis, kind: str) -> Dict[str, Any]:
    if kind not in GRAPH_KINDS:
        raise ProtocolError(
            f"unknown graph kind {kind!r}; known: "
            f"{', '.join(sorted(GRAPH_KINDS))}"
        )
    graphs = render_all(analysis)
    return {"kind": kind, "dot": graphs[GRAPH_KINDS[kind]]}


def enumerate_criteria(
    analysis: ProgramAnalysis, mode: str = "outputs"
) -> List[SlicingCriterion]:
    """The criterion families bulk jobs iterate over.

    ``outputs`` — one criterion per ``write(<var>)`` statement (the
    Ott–Thuss family used by :mod:`repro.metrics`); ``all`` — every
    (line, var) pair where the statement at that line uses or defines
    the variable.
    """
    if mode == "outputs":
        return output_criteria(analysis)
    if mode == "all":
        seen = set()
        criteria = []
        for node in analysis.cfg.statement_nodes():
            for var in sorted(node.uses | node.defs):
                key = (node.line, var)
                if key not in seen:
                    seen.add(key)
                    criteria.append(SlicingCriterion(line=node.line, var=var))
        return criteria
    raise ValueError(f"unknown criterion mode {mode!r}; use outputs|all")


class SlicingEngine:
    """Cache + worker pool + stats, behind one ``handle`` method.

    Parameters
    ----------
    cache:
        The shared :class:`AnalysisCache`; a prewarming 128-entry cache
        is created when omitted.
    workers:
        Thread-pool width for batch fan-out (default: executor default).
    stats:
        A :class:`ServiceStats` sink; created when omitted.
    limits:
        The :class:`EngineLimits` resilience policy (budgets, admission,
        degradation); defaults to unlimited-everything, which behaves
        exactly like the pre-resilience engine.
    faults:
        An optional :class:`FaultPlan`, consulted once per admitted
        request (deterministic fault injection for the test suite).
    store:
        An optional :class:`~repro.service.store.DurableStore` — the
        disk tier behind the in-memory caches.  Slice requests whose
        program is *not* in the analysis cache consult it before paying
        for an analysis build; every freshly computed exact slice is
        written back, so a restarted engine (or a sibling worker
        sharing the root) answers its warm set without re-analysing.
    slow_trace_seconds:
        When set, *every* request runs under a tracer and requests whose
        wall time reaches the threshold leave an exemplar span tree
        behind (:meth:`exemplars`, bounded ring) — so the one slow
        request in a thousand can be explained after the fact.  ``None``
        (the default) traces only requests that ask (``trace: true``).
    """

    #: How many slow-request exemplar traces are retained (newest win).
    MAX_EXEMPLARS = 8

    #: Bound of each per-analysis slice memo (entries, LRU).  ``all``-
    #: mode criterion families on big generated programs run a few
    #: hundred criteria, so this holds a whole family per algorithm
    #: pair without letting a hostile client grow memory unboundedly.
    SLICE_MEMO_CAPACITY = 512

    def __init__(
        self,
        cache: Optional[AnalysisCache] = None,
        workers: Optional[int] = None,
        stats: Optional[ServiceStats] = None,
        limits: Optional[EngineLimits] = None,
        faults: Optional[FaultPlan] = None,
        store: Optional[DurableStore] = None,
        slow_trace_seconds: Optional[float] = None,
    ) -> None:
        self.cache = cache if cache is not None else AnalysisCache(
            capacity=128, prewarm=True
        )
        self.stats = stats if stats is not None else ServiceStats()
        self.limits = limits if limits is not None else EngineLimits()
        self.faults = faults
        self.store = store
        self._draining = threading.Event()
        self.gate = AdmissionGate(
            max_inflight=self.limits.max_inflight,
            retry_after=self.limits.retry_after_seconds,
        )
        self.slow_trace_seconds = slow_trace_seconds
        self._exemplars: List[Dict[str, Any]] = []
        self._exemplar_lock = threading.Lock()
        self.slice_cache_stats = SliceCacheStats()
        self._memo_create_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="slang-worker"
        )

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def begin_drain(self) -> None:
        """Enter graceful drain: ``/readyz`` flips to 503 and the HTTP
        surface refuses new work, while requests already admitted run to
        completion.  Idempotent; there is no way back — a draining
        process exits."""
        if not self._draining.is_set():
            self._draining.set()
            self.stats.record_event("drain-begin")
            trace_event("drain-begin")

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def __enter__(self) -> "SlicingEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- request handling ---------------------------------------------

    def analysis_for(self, source: str) -> ProgramAnalysis:
        """Cached analysis of *source*, enforcing the current budget's
        CFG-node cap when one is installed."""
        budget = current_budget()
        return self.cache.get_or_build(
            source,
            max_nodes=budget.max_nodes if budget is not None else None,
        )

    def _memo_for(self, analysis: ProgramAnalysis) -> SliceMemo:
        """The per-analysis slice memo, created on first use.

        The memo lives on the analysis object itself (see
        :class:`SliceMemo` for the lifetime/soundness argument); the
        engine only supplies the capacity and the shared counters.
        """
        memo = analysis._slice_memo
        if memo is None:
            with self._memo_create_lock:
                memo = analysis._slice_memo
                if memo is None:
                    memo = SliceMemo(
                        self.SLICE_MEMO_CAPACITY, self.slice_cache_stats
                    )
                    analysis._slice_memo = memo
        return memo

    def slice_cached(
        self,
        analysis: ProgramAnalysis,
        line: int,
        var: str,
        algorithm: str,
        proc: Optional[str] = None,
    ):
        """One slice through the per-analysis memo.

        Only successful exact slices are stored: an algorithm that
        raises (refusal, budget exhaustion) caches nothing, and the
        degraded path in :meth:`_degrade` never comes through here — a
        budget-shaped answer must not be replayed to a request with a
        different budget.
        """
        key = (algorithm, line, var, proc)
        memo = self._memo_for(analysis)
        with trace_span("slice-cache-lookup") as span:
            result = memo.get(key)
            span.set(hit=result is not None)
        if result is None:
            result = get_algorithm(algorithm)(
                analysis, SlicingCriterion(line=line, var=var, proc=proc)
            )
            memo.put(key, result)
            self._record_sdg_stats(result)
            self._store_result(analysis, line, var, algorithm, proc, result)
        return result

    def _store_result(
        self,
        analysis: ProgramAnalysis,
        line: int,
        var: str,
        algorithm: str,
        proc: Optional[str],
        result: Any,
    ) -> None:
        """Write one freshly computed exact slice to the disk tier.

        Only this path stores: memo hits would be redundant, refusals
        and budget errors raise before reaching it, and degraded results
        never come through :meth:`slice_cached` at all — so the store
        holds exact answers only.  The wrapper records the program's CFG
        size so a later disk hit can honor a ``max_nodes`` cap without
        rebuilding the analysis it exists to skip.
        """
        if self.store is None or analysis._content_key is None:
            return
        skey = payload_store_key(
            analysis._content_key, algorithm, line, var, proc
        )
        wrapper = {
            "cfg_nodes": len(analysis.cfg.nodes),
            "payload": slice_result_payload(result),
        }
        digests = getattr(analysis, "_unit_digests", None)
        if digests is not None:
            wrapper["units"] = dict(digests)
        # The exact-source key is written first: fault injection arms
        # corruption on the *next* put, and the chaos drill reads the
        # exact key first — keep that the entry it poisons.
        self.store.put_json(skey, wrapper)
        if digests is not None:
            # Per-unit sub-key: the same wrapper is addressable by the
            # program's unit-fingerprint vector, so a formatting-only
            # edit (new source hash, identical units) still hits disk.
            self.store.put_json(
                units_store_key(
                    units_digest(digests), algorithm, line, var, proc
                ),
                wrapper,
            )

    def _slice_from_store(
        self, request: SliceRequest
    ) -> Optional[Dict[str, Any]]:
        """The disk tier of the two-tier read path, or ``None``.

        Consulted only when the memory tier would miss (so a warm
        in-process memo stays the fast path) and only when the stored
        wrapper proves the program fits the current budget's node cap —
        otherwise the caller falls through to the analysis path, which
        enforces the cap the usual way.
        """
        if self.store is None:
            return None
        akey = analysis_key(request.source)
        if self.cache.peek(akey) is not None:
            return None
        skey = payload_store_key(
            akey, request.algorithm, request.line, request.var, request.proc
        )
        wrapper = self.store.get_json(skey)
        if wrapper is None and incremental_enabled():
            # Exact-source miss: retry under the per-unit sub-key — a
            # formatting-only edit changes the source hash but not the
            # unit fingerprints.  Parsing here is far cheaper than the
            # analysis build a hit skips; unparseable sources fall
            # through to the analysis path, which owns the error.
            try:
                from repro.lang.parser import parse_program

                digests = unit_fingerprints(parse_program(request.source))
            except SlangError:
                digests = None
            if digests is not None:
                wrapper = self.store.get_json(
                    units_store_key(
                        units_digest(digests),
                        request.algorithm,
                        request.line,
                        request.var,
                        request.proc,
                    )
                )
                if isinstance(wrapper, dict):
                    self.cache.unit_cache.stats.record("store_unit_hits")
                    self.stats.record_event("store-unit-hit")
        if not isinstance(wrapper, dict):
            return None
        payload = wrapper.get("payload")
        nodes = wrapper.get("cfg_nodes")
        if not isinstance(payload, dict) or not isinstance(nodes, int):
            return None
        budget = current_budget()
        if (
            budget is not None
            and budget.max_nodes is not None
            and nodes > budget.max_nodes
        ):
            return None
        self.stats.record_event("store-hit")
        return payload

    def _record_sdg_stats(self, result) -> None:
        """Accumulate the ``sdg:*`` work counters from one freshly
        computed interprocedural slice (memo hits repeat no work, so
        they count nothing)."""
        sdg_result = getattr(result, "sdg_result", None)
        if sdg_result is None:
            return
        self.stats.record_event("sdg:procedures", len(sdg_result.sdg.procs))
        self.stats.record_event(
            "sdg:summary-edges", sdg_result.sdg.summary_edges
        )
        self.stats.record_event("sdg:pass1-visits", sdg_result.pass1_visits)
        self.stats.record_event("sdg:pass2-visits", sdg_result.pass2_visits)
        # Whole-SDG closure-index lifecycle (repro.sdg.closure).  Slice
        # replays carry zeroed counters, and the prewarm path reports
        # its own events directly, so each build/salvage/skip/lookup is
        # counted exactly once.
        for count, event in (
            (sdg_result.index_builds, "sdg-index:builds"),
            (sdg_result.index_mask_hits, "sdg-index:mask-hits"),
            (sdg_result.index_pressure_skips, "sdg-index:pressure-skips"),
            (sdg_result.index_salvages, "sdg-index:incremental-salvages"),
        ):
            if count:
                self.stats.record_event(event, count)

    def handle(self, request: ServiceRequest) -> Dict[str, Any]:
        """Execute one parsed request, returning a response envelope.

        Never raises: analysis and protocol failures become structured
        ``{"ok": false, "error": ...}`` envelopes.  The request runs
        under the full resilience pipeline — admission (shed with
        ``overloaded`` when over the in-flight limit), source-size
        limits, a per-request :class:`Budget` installed for every
        analysis loop, fault injection when configured, and sound
        degradation of over-budget exact slices to Fig. 13.
        """
        algorithm = getattr(request, "algorithm", None)
        try:
            with self.gate.admit():
                return self._handle_admitted(request, algorithm)
        except OverloadedError as error:
            self.stats.record_event("shed")
            return error_envelope(request.op, error, request.id)

    def _handle_admitted(
        self, request: ServiceRequest, algorithm: Optional[str]
    ) -> Dict[str, Any]:
        """Run one admitted request, under a tracer when asked.

        A tracer is created when the request carries ``trace: true`` or
        the engine has a slow-trace threshold; otherwise every
        ``trace_span`` below is a shared no-op and the request runs
        exactly as before the observability layer existed.  Tracers are
        request-scoped like budgets — worker threads start with an
        empty context, so one never leaks across requests.
        """
        traced = (
            getattr(request, "trace", False)
            or self.slow_trace_seconds is not None
        )
        if not traced:
            return self._execute(request, algorithm)
        tracer = Tracer()
        start = time.perf_counter()
        with use_tracer(tracer):
            with tracer.span(
                request.op, **({"algorithm": algorithm} if algorithm else {})
            ):
                envelope = self._execute(request, algorithm)
        elapsed = time.perf_counter() - start
        self.stats.record_phases(
            {
                phase: seconds
                for phase, (_, seconds) in phase_totals(tracer).items()
            }
        )
        tree = span_tree(tracer)
        if getattr(request, "trace", False):
            envelope["trace"] = tree
        if (
            self.slow_trace_seconds is not None
            and elapsed >= self.slow_trace_seconds
        ):
            exemplar = {
                "op": request.op,
                "id": request.id,
                "seconds": round(elapsed, 6),
                "ok": bool(envelope.get("ok")),
                "trace": tree,
            }
            with self._exemplar_lock:
                self._exemplars.append(exemplar)
                del self._exemplars[: -self.MAX_EXEMPLARS]
        return envelope

    def _execute(
        self, request: ServiceRequest, algorithm: Optional[str]
    ) -> Dict[str, Any]:
        try:
            with trace_span("admission"):
                source = getattr(request, "source", None)
                if source is not None:
                    self.limits.admit_source(source)
                budget = self.limits.budget_for(
                    getattr(request, "budget", None)
                )
            with use_budget(budget):
                with self.stats.time(request.op, algorithm):
                    try:
                        if self.faults is not None:
                            self.faults.apply(
                                request.op, algorithm, budget, engine=self
                            )
                        with trace_span("dispatch"):
                            result = self._dispatch(request)
                    except BudgetExceededError as error:
                        self.stats.record_event("budget-exceeded")
                        # Raises the original error when degradation is
                        # off, inapplicable, or itself over budget.
                        with trace_span(
                            "degrade", reason=error.reason, phase=error.phase
                        ):
                            result = self._degrade(request, error)
                        self.stats.record_event("degraded")
                        trace_event("degraded", reason=error.reason)
        except InjectedFaultError as error:
            self.stats.record_event("fault-injected")
            trace_event("fault-injected")
            with trace_span("response-encode"):
                return error_envelope(request.op, error, request.id)
        except (SlangError, ValueError) as error:
            with trace_span("response-encode"):
                return error_envelope(request.op, error, request.id)
        with trace_span("response-encode"):
            return ok_envelope(request.op, result, request.id)

    def _dispatch(self, request: ServiceRequest) -> Dict[str, Any]:
        if isinstance(request, SliceRequest):
            stored = self._slice_from_store(request)
            if stored is not None:
                return stored
            analysis = self.analysis_for(request.source)
            check_algorithm_capability(analysis, request.algorithm)
            result = self.slice_cached(
                analysis,
                request.line,
                request.var,
                request.algorithm,
                proc=request.proc,
            )
            return slice_result_payload(result)
        if isinstance(request, CompareRequest):
            return perform_compare(
                self.analysis_for(request.source),
                request.line,
                request.var,
            )
        if isinstance(request, GraphRequest):
            return perform_graph(
                self.analysis_for(request.source), request.kind
            )
        if isinstance(request, MetricsRequest):
            return self._perform_metrics(request)
        if isinstance(request, CheckRequest):
            result = perform_check(
                request.source, request.select, request.ignore
            )
            self.stats.record_diagnostics(result["counts"])
            return result
        # pragma: no cover — request_from_dict prevents this
        raise ValueError(f"unhandled request type {request!r}")

    def _degrade(
        self, request: ServiceRequest, error: BudgetExceededError
    ) -> Dict[str, Any]:
        """Soundly downgrade an over-budget exact slice to Fig. 13.

        The paper's conservative on-the-fly algorithm "may be larger
        but is never wrong" on structured programs, and it performs
        zero traversal rounds — so it completes under the very
        iteration cap that stopped Fig. 7, within the request's
        remaining wall clock.  The result is independently audited by
        the SL20x slice verifier before it is returned; any violation
        (or a Fig. 13 refusal — unstructured program, dead code) falls
        back to re-raising the original ``budget-exceeded`` error.
        """
        if self.limits.degrade != "conservative":
            raise error
        if not isinstance(request, SliceRequest):
            raise error
        if request.algorithm == "conservative":
            raise error
        if error.reason == "nodes":
            # The node cap binds Fig. 13 exactly as hard; don't retry.
            raise error
        from repro.lint.slice_check import verify_result
        from repro.slicing.conservative import conservative_slice

        try:
            analysis = self.analysis_for(request.source)
        except SlangError:
            raise error from None
        if analysis.program.procs:
            # Fig. 13 sees the main unit alone; a degraded answer for a
            # multi-procedure program would silently drop every callee
            # effect — unsound, so the budget error stands.
            raise error
        try:
            result = conservative_slice(
                analysis,
                SlicingCriterion(line=request.line, var=request.var),
            )
            violations = verify_result(result)
        except BudgetExceededError:
            raise error from None
        except SlangError:
            raise error from None
        if violations:  # pragma: no cover — Fig. 13 is sound by design
            raise error
        payload = slice_result_payload(result)
        payload["degraded"] = True
        payload["degraded_from"] = request.algorithm
        payload["degrade_reason"] = {
            "code": "budget-exceeded",
            "reason": error.reason,
            "phase": error.phase,
            "message": error.message,
        }
        return payload

    def handle_payload(self, payload: Any) -> Dict[str, Any]:
        """Parse a raw JSON object and execute it."""
        try:
            request = request_from_dict(payload)
        except SlangError as error:
            request_id = (
                payload.get("id") if isinstance(payload, dict) else None
            )
            op = payload.get("op") if isinstance(payload, dict) else None
            return error_envelope(
                op if isinstance(op, str) else "unknown", error, request_id
            )
        return self.handle(request)

    def run_batch(
        self,
        payloads: Sequence[Any],
        retry: Optional[RetryPolicy] = None,
    ) -> List[Dict[str, Any]]:
        """Fan a batch of raw request payloads over the worker pool,
        preserving input order in the response list.

        With a :class:`RetryPolicy`, responses whose error is marked
        ``retryable`` (``overloaded``, ``fault-injected``) are re-issued
        up to ``max_retries`` times with jittered exponential backoff;
        outcomes land in the stats events as ``retry`` (one per
        re-issue), ``retry:recovered``, and ``retry:exhausted``.
        """
        if retry is None or retry.max_retries <= 0:
            return list(self._pool.map(self.handle_payload, payloads))
        rng = retry.rng()
        rng_lock = threading.Lock()

        def _retryable(response: Dict[str, Any]) -> bool:
            return not response.get("ok") and bool(
                response.get("error", {}).get("retryable")
            )

        def one(payload: Any) -> Dict[str, Any]:
            response = self.handle_payload(payload)
            attempts = 0
            while _retryable(response) and attempts < retry.max_retries:
                floor = response.get("error", {}).get("retry_after")
                if not isinstance(floor, (int, float)) or isinstance(
                    floor, bool
                ):
                    floor = None
                with rng_lock:
                    delay = retry.delay(attempts, rng, floor=floor)
                self.stats.record_event("retry")
                time.sleep(delay)
                attempts += 1
                response = self.handle_payload(payload)
            if attempts:
                self.stats.record_event(
                    "retry:recovered"
                    if response.get("ok")
                    else "retry:exhausted"
                )
            return response

        return list(self._pool.map(one, payloads))

    # -- bulk jobs -----------------------------------------------------

    def _prewarm_sdg_index(
        self, analysis: ProgramAnalysis, algorithm: str
    ) -> None:
        """Amortized batch path: build the SDG and its whole-graph
        closure index once, inline, before fanning an interprocedural
        criterion family over the pool — every task then answers from
        masks instead of queuing behind the per-SDG build lock.  (The
        ``/batch`` endpoint amortizes the same way without this hook:
        same-source requests share the cached analysis, whose memoized
        SDG carries the index after the first build.)  Best-effort:
        budget aborts here are swallowed, the per-slice path owns error
        reporting and the worklist fallback."""
        if algorithm != "interprocedural" or not analysis.program.procs:
            return
        from repro.sdg.builder import sdg_for_analysis
        from repro.sdg.closure import ensure_sdg_index, sdg_index_enabled

        if not sdg_index_enabled():
            return
        try:
            with trace_span("sdg-index-prewarm"):
                _, events = ensure_sdg_index(
                    sdg_for_analysis(analysis), analysis
                )
        except SlangError:
            return
        for key, event in (
            ("builds", "sdg-index:builds"),
            ("pressure_skips", "sdg-index:pressure-skips"),
            ("salvages", "sdg-index:incremental-salvages"),
        ):
            if events.get(key):
                self.stats.record_event(event, events[key])

    def slice_node_sets(
        self,
        analysis: ProgramAnalysis,
        criteria: Sequence[SlicingCriterion],
        algorithm: str = "agrawal",
    ) -> List[frozenset]:
        """Fan one program's criterion family over the pool, returning
        each slice's statement-node set (the shape
        :func:`repro.metrics.slice_based_metrics` consumes).

        Do not call from inside a pool task — a saturated pool waiting
        on nested tasks would deadlock; the engine's own ``metrics``
        handler slices inline for exactly that reason.
        """
        self._prewarm_sdg_index(analysis, algorithm)

        def one(criterion: SlicingCriterion) -> frozenset:
            result = self.slice_cached(
                analysis, criterion.line, criterion.var, algorithm
            )
            return frozenset(result.statement_nodes())

        return list(self._pool.map(one, criteria))

    def bulk_slice(
        self,
        source: str,
        algorithm: str = "agrawal",
        criteria: Optional[Sequence[SlicingCriterion]] = None,
        mode: str = "outputs",
    ) -> List[Dict[str, Any]]:
        """Slice every criterion of one program (the "slice everything"
        job): one cached analysis, every slice a pool task."""
        analysis = self.analysis_for(source)
        check_algorithm_capability(analysis, algorithm)
        self._prewarm_sdg_index(analysis, algorithm)
        if criteria is None:
            criteria = enumerate_criteria(analysis, mode)

        def one(criterion: SlicingCriterion) -> Dict[str, Any]:
            with self.stats.time("bulk-slice", algorithm):
                result = self.slice_cached(
                    analysis, criterion.line, criterion.var, algorithm
                )
                return slice_result_payload(result)

        return list(self._pool.map(one, criteria))

    # -- metrics -------------------------------------------------------

    def _perform_metrics(self, request: MetricsRequest) -> Dict[str, Any]:
        analysis = self.analysis_for(request.source)
        check_algorithm_capability(analysis, request.algorithm)
        # Inline (no nested pool tasks): see slice_node_sets.
        metrics = slice_based_metrics(analysis, algorithm=request.algorithm)
        return {
            "algorithm": request.algorithm,
            "criteria": [
                {"line": criterion.line, "var": criterion.var}
                for criterion in metrics.criteria
            ],
            "slice_sizes": list(metrics.slice_sizes),
            "program_size": metrics.program_size,
            "tightness": round(metrics.tightness, 6),
            "coverage": round(metrics.coverage, 6),
            "min_coverage": round(metrics.min_coverage, 6),
            "max_coverage": round(metrics.max_coverage, 6),
            "overlap": round(metrics.overlap, 6),
        }

    # -- observability -------------------------------------------------

    def exemplars(self) -> List[Dict[str, Any]]:
        """Retained slow-request span trees, oldest first (bounded at
        :attr:`MAX_EXEMPLARS`); empty unless ``slow_trace_seconds`` is
        configured."""
        with self._exemplar_lock:
            return [dict(exemplar) for exemplar in self._exemplars]

    def stats_payload(self) -> Dict[str, Any]:
        payload = self.stats.snapshot()
        payload["cache"] = self.cache.stats()
        payload["slice_cache"] = self.slice_cache_stats.stats()
        payload["incremental"] = self.cache.unit_cache.snapshot()
        payload["admission"] = self.gate.snapshot()
        if self.store is not None:
            payload["store"] = self.store.stats()
        if self.faults is not None:
            payload["faults"] = self.faults.snapshot()
        if self.slow_trace_seconds is not None:
            payload["exemplars"] = self.exemplars()
        return payload

    def readiness(self) -> Dict[str, Any]:
        """``GET /readyz``: ready while the gate still has headroom —
        a request arriving now would be admitted, not shed — and the
        engine is not draining.  A draining process is alive (healthz
        stays 200) but must receive no new work: load balancers and the
        cluster supervisor route around it while in-flight requests
        finish."""
        snapshot = self.gate.snapshot()
        ready = not self.draining and (
            snapshot["max_inflight"] is None
            or snapshot["inflight"] < snapshot["max_inflight"]
        )
        return {"ok": ready, "draining": self.draining, **snapshot}
