"""Supervised multi-process serving: the cluster layer (DESIGN.md §13).

``slang serve --workers N`` (N > 1) runs this module instead of a bare
:class:`~repro.service.server.SlicingHTTPServer`:

* The **supervisor** (parent) binds the front socket and proxies every
  request to one of *N* **workers** — separate Python processes, each
  running the ordinary single-process server on its own loopback port.
  The GIL stops being the ceiling: analyses run truly in parallel.
* Requests are **sharded by program content hash** (the ``source``
  field), so repeated slices of one program always land on the worker
  whose analysis cache, closure index, and slice memo are already hot
  for it.  ``/batch`` bodies are split per shard, forwarded
  concurrently, and merged back in input order.
* The supervisor **monitors** its workers: a dead process (crash,
  ``SIGKILL``, the ``worker-crash`` fault) or one that stops answering
  ``/healthz`` past the heartbeat deadline is killed and **restarted
  with jittered exponential backoff**; a crash loop (too many restarts
  inside a sliding window) opens a **circuit breaker** that parks the
  shard for a cooldown instead of burning CPU on a worker that cannot
  live.  Requests for an unavailable shard are answered with a
  *retryable* 503 + ``Retry-After`` — the client's backoff, not the
  supervisor, absorbs the restart gap.
* On ``SIGTERM``/``SIGINT`` the supervisor **drains**: it stops
  accepting work (front ``/readyz`` goes 503, new POSTs are refused),
  forwards ``SIGTERM`` so each worker finishes its in-flight requests
  (the worker's own drain path), waits up to the drain deadline, then
  kills stragglers and exits.

Workers share one :class:`~repro.service.store.DurableStore` root, so a
restarted worker — or a whole restarted cluster — answers its warm set
from disk without recomputing anything (the two-tier read path in
:mod:`repro.service.engine`).

The worker entrypoint is this same module: the supervisor spawns
``python -m repro.service.cluster --worker '<json>'``; the child binds
port 0, prints one ``SLANG_WORKER_PORT=<port>`` handshake line on
stdout, and serves until told to drain.  Everything is stdlib.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import math
import os
import random
import selectors
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.prom import PROM_CONTENT_TYPE, render_prometheus
from repro.service.protocol import (
    ProtocolError,
    capabilities_payload,
    dump_json,
    error_envelope,
)
from repro.service.resilience import OverloadedError, PayloadTooLargeError
from repro.service.stats import merge_stats_payloads

#: Front-door body cap (mirrors the single-process server's).
MAX_BODY_BYTES = 8 * 1024 * 1024

_HANDSHAKE_PREFIX = b"SLANG_WORKER_PORT="

#: POST endpoints the supervisor will proxy.
_PROXY_OPS = ("slice", "compare", "graph", "metrics", "check")


def shard_for(source: str, workers: int) -> int:
    """The worker index owning *source* — a stable content hash, so one
    program's requests always reuse the same worker's warm caches."""
    digest = hashlib.sha256(source.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % workers


@dataclass
class ClusterConfig:
    """Everything the supervisor and its workers need to agree on."""

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 8377
    threads: Optional[int] = None  # per-worker thread-pool width
    store_root: Optional[str] = None
    store_max_bytes: Optional[int] = None
    faults: Optional[Dict[str, Any]] = None  # FaultPlan dict, per worker
    #: Re-arm the fault plan in restarted workers.  Off by default: a
    #: crash is an incident, not a property of the replacement process —
    #: a chaos plan with ``worker-crash`` kills each worker at most its
    #: scheduled number of times and the pool then heals, instead of
    #: every replacement re-crashing on its own first match forever.
    faults_on_restart: bool = False
    limits: Dict[str, Any] = field(default_factory=dict)  # EngineLimits kwargs
    heartbeat_interval: float = 0.25
    heartbeat_timeout: float = 5.0
    spawn_timeout: float = 30.0
    drain_seconds: float = 10.0
    backoff_base: float = 0.2
    backoff_max: float = 5.0
    backoff_jitter: float = 0.5
    breaker_threshold: int = 5  # restarts inside the window that trip it
    breaker_window: float = 30.0
    breaker_cooldown: float = 30.0
    request_timeout: float = 60.0
    retry_after: float = 0.25  # named in unavailable-shard refusals
    seed: int = 0
    verbose: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("a cluster needs at least one worker")

    def worker_payload(self) -> Dict[str, Any]:
        """The JSON config one worker process receives on its argv."""
        return {
            "host": "127.0.0.1",
            "threads": self.threads,
            "store_root": self.store_root,
            "store_max_bytes": self.store_max_bytes,
            "faults": self.faults,
            "limits": self.limits,
            "drain_seconds": self.drain_seconds,
        }


class _Worker:
    """Supervisor-side state of one worker slot (a shard)."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.proc: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.restarts = 0  # lifetime restart count (spawn #0 not counted)
        self.requests = 0  # requests proxied to this shard
        self.proxy_errors = 0
        self.restart_times: List[float] = []  # breaker window
        self.restart_at: Optional[float] = None  # pending backoff deadline
        self.broken_until: Optional[float] = None  # breaker open until
        self.consecutive_failures = 0
        self.last_ok: Optional[float] = None  # last healthz success
        self.spawned_at: Optional[float] = None

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def snapshot(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "pid": self.proc.pid if self.proc else None,
            "port": self.port,
            "alive": self.alive,
            "restarts": self.restarts,
            "requests": self.requests,
            "proxy_errors": self.proxy_errors,
            "breaker_open": self.broken_until is not None,
        }


class ClusterSupervisor:
    """The parent process: front socket, worker pool, heartbeat loop."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._workers = [_Worker(shard) for shard in range(config.workers)]
        self._lock = threading.Lock()
        self._draining = False
        self._stopped = threading.Event()
        self._monitor_thread: Optional[threading.Thread] = None
        self.restarts_logged = 0
        self.proxy_errors = 0
        self._server = _SupervisorHTTPServer(
            (config.host, config.port), self
        )
        self._server_thread: Optional[threading.Thread] = None

    # -- logging -------------------------------------------------------

    def _log(self, message: str) -> None:
        if self.config.verbose:
            sys.stderr.write(f"[slang-cluster] {message}\n")
            sys.stderr.flush()

    # -- properties ----------------------------------------------------

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def draining(self) -> bool:
        return self._draining

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Spawn every worker, start the monitor, serve in background."""
        for worker in self._workers:
            self._spawn(worker)
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="slang-monitor", daemon=True
        )
        self._monitor_thread.start()
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="slang-front",
            daemon=True,
        )
        self._server_thread.start()
        self._log(
            f"supervising {len(self._workers)} worker(s) on "
            f"{self.config.host}:{self.port}"
        )

    def serve_forever(self) -> None:
        """Blocking entrypoint for the CLI: installs signal handlers
        (main thread only), serves until a signal drains us."""

        def _on_signal(signum: int, frame: Any) -> None:
            self._log(f"received signal {signum}; draining")
            threading.Thread(
                target=self.stop, kwargs={"drain": True}, daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
        self.start()
        self._stopped.wait()

    def stop(self, drain: bool = True) -> None:
        """Drain (or just kill) the pool and shut the front door."""
        with self._lock:
            if self._draining and self._stopped.is_set():
                return
            self._draining = True
        deadline = time.monotonic() + (
            self.config.drain_seconds if drain else 0.0
        )
        for worker in self._workers:
            if worker.alive:
                try:
                    worker.proc.send_signal(
                        signal.SIGTERM if drain else signal.SIGKILL
                    )
                except OSError:
                    pass
        for worker in self._workers:
            if worker.proc is None:
                continue
            remaining = deadline - time.monotonic()
            try:
                worker.proc.wait(timeout=max(0.0, remaining))
            except subprocess.TimeoutExpired:
                self._log(
                    f"worker {worker.shard} missed the drain deadline; "
                    "killing"
                )
                try:
                    worker.proc.kill()
                    worker.proc.wait(timeout=5.0)
                except (OSError, subprocess.TimeoutExpired):
                    pass
        self._server.shutdown()
        self._server.server_close()
        self._stopped.set()
        self._log("drained and stopped")

    # -- spawning and monitoring ---------------------------------------

    def _spawn(self, worker: _Worker) -> bool:
        """Start one worker process and wait for its port handshake."""
        payload = self.config.worker_payload()
        if worker.restarts > 0 and not self.config.faults_on_restart:
            payload["faults"] = None
        env = dict(os.environ)
        # The child must import repro exactly as we did, wherever the
        # supervisor was launched from.
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir + os.pathsep + existing if existing else src_dir
        )
        try:
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.service.cluster",
                    "--worker",
                    json.dumps(payload),
                ],
                stdout=subprocess.PIPE,
                env=env,
            )
        except OSError as error:
            self._log(f"worker {worker.shard} failed to spawn: {error}")
            self._schedule_restart(worker, "spawn-failed")
            return False
        port = self._read_handshake(proc)
        if port is None:
            self._log(
                f"worker {worker.shard} (pid {proc.pid}) never "
                "handshook; killing"
            )
            try:
                proc.kill()
                proc.wait(timeout=5.0)
            except (OSError, subprocess.TimeoutExpired):
                pass
            self._schedule_restart(worker, "handshake-timeout")
            return False
        worker.proc = proc
        worker.port = port
        worker.restart_at = None
        worker.spawned_at = time.monotonic()
        worker.last_ok = None
        self._log(
            f"worker {worker.shard} (pid {proc.pid}) serving on "
            f"127.0.0.1:{port}"
        )
        return True

    def _read_handshake(self, proc: subprocess.Popen) -> Optional[int]:
        """The child's ``SLANG_WORKER_PORT=`` line, within the spawn
        deadline — non-blocking so a wedged child cannot wedge us."""
        deadline = time.monotonic() + self.config.spawn_timeout
        stdout = proc.stdout
        os.set_blocking(stdout.fileno(), False)
        buffer = b""
        with selectors.DefaultSelector() as selector:
            selector.register(stdout, selectors.EVENT_READ)
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    return None
                if not selector.select(timeout=0.05):
                    continue
                chunk = stdout.read()
                if chunk:
                    buffer += chunk
                if b"\n" in buffer:
                    line, _, _ = buffer.partition(b"\n")
                    if line.startswith(_HANDSHAKE_PREFIX):
                        try:
                            return int(line[len(_HANDSHAKE_PREFIX):])
                        except ValueError:
                            return None
                    return None
        return None

    def _schedule_restart(self, worker: _Worker, reason: str) -> None:
        """Queue a backoff-delayed restart, or trip the breaker."""
        now = time.monotonic()
        worker.proc = None
        worker.port = None
        worker.consecutive_failures += 1
        worker.restart_times.append(now)
        window = now - self.config.breaker_window
        worker.restart_times = [
            moment for moment in worker.restart_times if moment >= window
        ]
        if len(worker.restart_times) > self.config.breaker_threshold:
            worker.broken_until = now + self.config.breaker_cooldown
            worker.restart_at = None
            self._log(
                f"worker {worker.shard} is crash-looping "
                f"({len(worker.restart_times)} restarts in "
                f"{self.config.breaker_window:g}s); circuit breaker open "
                f"for {self.config.breaker_cooldown:g}s ({reason})"
            )
            return
        delay = min(
            self.config.backoff_max,
            self.config.backoff_base
            * (2.0 ** (worker.consecutive_failures - 1)),
        )
        delay *= 1.0 - self.config.backoff_jitter * self._rng.random()
        worker.restart_at = now + delay
        worker.restarts += 1
        self.restarts_logged += 1
        self._log(
            f"restarting worker {worker.shard} in {delay:.2f}s "
            f"(restart #{worker.restarts}, {reason})"
        )

    def _monitor_loop(self) -> None:
        while not self._stopped.is_set():
            if self._draining:
                return
            for worker in self._workers:
                try:
                    self._monitor_one(worker)
                except Exception as error:  # never kill the monitor
                    self._log(
                        f"monitor error on worker {worker.shard}: {error!r}"
                    )
            self._stopped.wait(self.config.heartbeat_interval)

    def _monitor_one(self, worker: _Worker) -> None:
        now = time.monotonic()
        if worker.broken_until is not None:
            if now < worker.broken_until:
                return
            # Half-open: the cooldown expired, try one spawn.
            worker.broken_until = None
            worker.restart_times.clear()
            worker.restart_at = now
            self._log(
                f"worker {worker.shard} circuit breaker half-open; "
                "attempting restart"
            )
        if worker.proc is None:
            if worker.restart_at is not None and now >= worker.restart_at:
                self._spawn(worker)
            return
        status = worker.proc.poll()
        if status is not None:
            self._log(
                f"worker {worker.shard} (pid {worker.proc.pid}) exited "
                f"with status {status}"
            )
            self._schedule_restart(worker, f"exit-{status}")
            return
        # Heartbeat: an alive process that stops answering is a hang.
        healthy = self._healthz(worker)
        if healthy:
            worker.last_ok = now
            if (
                worker.consecutive_failures
                and worker.spawned_at is not None
                and now - worker.spawned_at > self.config.heartbeat_timeout
            ):
                worker.consecutive_failures = 0  # stably back
            return
        reference = worker.last_ok or worker.spawned_at or now
        if now - reference > self.config.heartbeat_timeout:
            self._log(
                f"worker {worker.shard} (pid {worker.proc.pid}) missed "
                f"heartbeats for {now - reference:.1f}s; killing"
            )
            try:
                worker.proc.kill()
            except OSError:
                pass

    def _healthz(self, worker: _Worker) -> bool:
        if worker.port is None:
            return False
        try:
            status, _, _ = self._forward(
                worker, "GET", "/healthz", timeout=self.config.heartbeat_interval + 1.0,
                count_request=False,
            )
            return status == 200
        except (OSError, http.client.HTTPException):
            return False

    # -- proxying ------------------------------------------------------

    def _forward(
        self,
        worker: _Worker,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        timeout: Optional[float] = None,
        count_request: bool = True,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One exchange with a worker: ``(status, headers, body)``."""
        if worker.port is None:
            raise OSError("worker has no port (restarting)")
        if count_request:
            with self._lock:
                worker.requests += 1
        conn = http.client.HTTPConnection(
            "127.0.0.1",
            worker.port,
            timeout=timeout or self.config.request_timeout,
        )
        try:
            headers = {}
            if body is not None:
                headers["Content-Type"] = "application/json; charset=utf-8"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return response.status, dict(response.getheaders()), data
        finally:
            conn.close()

    def proxy(
        self, op: str, body: bytes, source: Optional[str]
    ) -> Tuple[int, Dict[str, str], bytes]:
        """Route one POST to its shard; a dead shard answers retryable.

        Requests without a ``source`` (nothing to shard on) go to the
        first available worker.
        """
        if source is not None:
            worker = self._workers[shard_for(source, len(self._workers))]
        else:
            worker = next(
                (candidate for candidate in self._workers if candidate.alive),
                self._workers[0],
            )
        try:
            return self._forward(worker, "POST", f"/{op}", body)
        except (OSError, http.client.HTTPException) as error:
            with self._lock:
                worker.proxy_errors += 1
                self.proxy_errors += 1
            envelope = error_envelope(
                op,
                OverloadedError(
                    f"worker for this shard is unavailable "
                    f"({error.__class__.__name__}); it is being restarted",
                    retry_after=self.config.retry_after,
                ),
            )
            return (
                503,
                {
                    "Retry-After": str(
                        max(1, math.ceil(self.config.retry_after))
                    )
                },
                dump_json(envelope).encode("utf-8"),
            )

    def run_batch_sharded(
        self, requests: List[Any]
    ) -> List[Dict[str, Any]]:
        """Split one batch by shard, forward sub-batches concurrently,
        merge responses back into input order."""
        groups: Dict[int, List[int]] = {}
        for index, request in enumerate(requests):
            source = (
                request.get("source")
                if isinstance(request, dict)
                else None
            )
            shard = (
                shard_for(source, len(self._workers))
                if isinstance(source, str)
                else 0
            )
            groups.setdefault(shard, []).append(index)
        responses: List[Optional[Dict[str, Any]]] = [None] * len(requests)

        def one_shard(shard: int, indices: List[int]) -> None:
            worker = self._workers[shard]
            body = dump_json(
                {"requests": [requests[index] for index in indices]}
            ).encode("utf-8")
            try:
                status, _, data = self._forward(worker, "POST", "/batch", body)
                payload = json.loads(data.decode("utf-8"))
                members = payload["responses"]
                if status != 200 or len(members) != len(indices):
                    raise ValueError("bad batch response shape")
            except (
                OSError,
                http.client.HTTPException,
                ValueError,
                KeyError,
                TypeError,
                json.JSONDecodeError,
                UnicodeDecodeError,
            ):
                with self._lock:
                    worker.proxy_errors += 1
                    self.proxy_errors += 1
                members = [
                    error_envelope(
                        requests[index].get("op", "unknown")
                        if isinstance(requests[index], dict)
                        else "unknown",
                        OverloadedError(
                            "worker for this shard is unavailable; "
                            "it is being restarted",
                            retry_after=self.config.retry_after,
                        ),
                    )
                    for index in indices
                ]
            for index, member in zip(indices, members):
                responses[index] = member

        with ThreadPoolExecutor(max_workers=max(1, len(groups))) as pool:
            list(
                pool.map(
                    lambda item: one_shard(item[0], item[1]), groups.items()
                )
            )
        return [response for response in responses if response is not None]

    # -- aggregated observability --------------------------------------

    def cluster_snapshot(self) -> Dict[str, Any]:
        with self._lock:
            worker_stats = [worker.snapshot() for worker in self._workers]
            return {
                "workers": len(self._workers),
                "alive": sum(1 for stat in worker_stats if stat["alive"]),
                "restarts": sum(stat["restarts"] for stat in worker_stats),
                "proxy_errors": self.proxy_errors,
                "draining": self._draining,
                "worker_stats": worker_stats,
            }

    def stats_payload(self) -> Dict[str, Any]:
        """Every live worker's ``/stats`` merged, plus the cluster view."""
        payloads = []
        for worker in self._workers:
            if not worker.alive:
                continue
            try:
                _, _, data = self._forward(
                    worker, "GET", "/stats", count_request=False
                )
                payloads.append(json.loads(data.decode("utf-8")))
            except (
                OSError,
                http.client.HTTPException,
                json.JSONDecodeError,
                UnicodeDecodeError,
            ):
                continue
        merged = merge_stats_payloads(payloads)
        merged["cluster"] = self.cluster_snapshot()
        return merged

    def readiness(self) -> Dict[str, Any]:
        cluster = self.cluster_snapshot()
        ready = not self._draining and cluster["alive"] > 0
        return {"ok": ready, **cluster}


class _SupervisorHTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(
        self, address: Tuple[str, int], supervisor: ClusterSupervisor
    ) -> None:
        super().__init__(address, _SupervisorHandler)
        self.supervisor = supervisor


class _SupervisorHandler(BaseHTTPRequestHandler):
    """The front door: shard-and-forward POSTs, aggregate GETs."""

    server_version = "slang-cluster/1"
    protocol_version = "HTTP/1.1"

    @property
    def supervisor(self) -> ClusterSupervisor:
        return self.server.supervisor  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        pass  # worker-level logs carry the signal; the proxy stays quiet

    def _send_body(
        self,
        body: bytes,
        content_type: str,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        payload: Dict[str, Any],
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._send_body(
            dump_json(payload).encode("utf-8"),
            "application/json; charset=utf-8",
            status=status,
            headers=headers,
        )

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        path = self.path.split("?", 1)[0]
        supervisor = self.supervisor
        if path == "/healthz":
            self._send_json({"ok": True})
        elif path == "/readyz":
            payload = supervisor.readiness()
            if payload["ok"]:
                self._send_json(payload)
            else:
                retry_after = supervisor.config.retry_after
                self._send_json(
                    payload,
                    status=503,
                    headers={
                        "Retry-After": str(max(1, math.ceil(retry_after)))
                    },
                )
        elif path == "/stats":
            self._send_json(supervisor.stats_payload())
        elif path == "/metrics.prom":
            self._send_body(
                render_prometheus(supervisor.stats_payload()).encode(
                    "utf-8"
                ),
                PROM_CONTENT_TYPE,
            )
        elif path == "/algorithms":
            self._send_json(capabilities_payload())
        else:
            self._send_json(
                error_envelope(
                    "get", ProtocolError(f"no such endpoint {path!r}")
                ),
                status=404,
            )

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        path = self.path.split("?", 1)[0]
        op = path.lstrip("/")
        supervisor = self.supervisor
        if op != "batch" and op not in _PROXY_OPS:
            self._send_json(
                error_envelope(
                    "post", ProtocolError(f"no such endpoint {path!r}")
                ),
                status=404,
            )
            return
        try:
            body = self._read_body()
        except PayloadTooLargeError as error:
            status = 411 if self.headers.get("Content-Length") is None else 413
            self._send_json(error_envelope(op, error), status=status)
            return
        if supervisor.draining:
            retry_after = supervisor.config.retry_after
            self._send_json(
                error_envelope(
                    op,
                    OverloadedError(
                        "cluster is draining; retry elsewhere",
                        retry_after=retry_after,
                    ),
                ),
                status=503,
                headers={
                    "Retry-After": str(max(1, math.ceil(retry_after)))
                },
            )
            return
        if op == "batch":
            try:
                payload = json.loads(body.decode("utf-8"))
                requests = payload["requests"]
                if not isinstance(requests, list):
                    raise ValueError
            except (
                ValueError,
                KeyError,
                TypeError,
                UnicodeDecodeError,
            ):
                self._send_json(
                    error_envelope(
                        "batch",
                        ProtocolError(
                            'batch body must be {"requests": [request, ...]}'
                        ),
                    ),
                    status=400,
                )
                return
            responses = supervisor.run_batch_sharded(requests)
            self._send_json({"ok": True, "responses": responses})
            return
        source: Optional[str] = None
        try:
            parsed = json.loads(body.decode("utf-8"))
            if isinstance(parsed, dict) and isinstance(
                parsed.get("source"), str
            ):
                source = parsed["source"]
        except (ValueError, UnicodeDecodeError):
            pass  # the worker produces the structured parse error
        status, headers, data = supervisor.proxy(op, body, source)
        relay = {}
        if "Retry-After" in headers:
            relay["Retry-After"] = headers["Retry-After"]
        self._send_body(
            data,
            headers.get(
                "Content-Type", "application/json; charset=utf-8"
            ),
            status=status,
            headers=relay,
        )

    def _read_body(self) -> bytes:
        header = self.headers.get("Content-Length")
        if header is None:
            raise PayloadTooLargeError(
                "request has no Content-Length header; bodies of "
                "unannounced size are refused"
            )
        try:
            length = int(header)
        except ValueError:
            raise PayloadTooLargeError(
                f"Content-Length {header!r} is not an integer"
            ) from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise PayloadTooLargeError(
                f"request body of {header} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        return self.rfile.read(length) if length else b""


# -- the worker entrypoint ---------------------------------------------


def worker_main(config_json: str) -> int:
    """``python -m repro.service.cluster --worker '<json>'``.

    Builds a full single-process server (engine + durable store + fault
    plan with process exits armed), binds port 0, prints the handshake,
    and serves until SIGTERM starts the drain.
    """
    from repro.service.cache import AnalysisCache
    from repro.service.engine import SlicingEngine
    from repro.service.faults import FaultPlan
    from repro.service.resilience import EngineLimits
    from repro.service.server import make_server
    from repro.service.store import DurableStore

    config = json.loads(config_json)
    store = None
    if config.get("store_root"):
        kwargs: Dict[str, Any] = {}
        if config.get("store_max_bytes") is not None:
            kwargs["max_bytes"] = config["store_max_bytes"]
        store = DurableStore(config["store_root"], **kwargs)
    faults = None
    if config.get("faults"):
        faults = FaultPlan.from_dict(config["faults"])
        faults.allow_process_exit = True
    engine = SlicingEngine(
        cache=AnalysisCache(capacity=128, prewarm=True),
        workers=config.get("threads"),
        limits=EngineLimits(**(config.get("limits") or {})),
        faults=faults,
        store=store,
    )
    server = make_server(config.get("host", "127.0.0.1"), 0, engine)
    port = server.server_address[1]
    sys.stdout.write(f"SLANG_WORKER_PORT={port}\n")
    sys.stdout.flush()
    drain_seconds = float(config.get("drain_seconds", 10.0))

    def _drain() -> None:
        engine.begin_drain()
        deadline = time.monotonic() + drain_seconds
        while engine.gate.inflight > 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        server.shutdown()

    def _on_signal(signum: int, frame: Any) -> None:
        threading.Thread(target=_drain, daemon=True).start()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        engine.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) == 2 and argv[0] == "--worker":
        return worker_main(argv[1])
    sys.stderr.write(
        "usage: python -m repro.service.cluster --worker '<json>'\n"
        "(the supervisor is started via `slang serve --workers N`)\n"
    )
    return 2


if __name__ == "__main__":
    sys.exit(main())
