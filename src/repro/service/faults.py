"""Deterministic fault injection behind the slicing engine.

A :class:`FaultPlan` is a seeded list of :class:`FaultRule`\\ s the
engine consults once per admitted request, *before* dispatch.  Each
rule matches on ``(op, algorithm)`` and fires on a deterministic
schedule — the first *N* matches (``first_n``), every *N*-th match
(``every``), or a seeded coin flip (``rate``) — and injects one of
three failure modes:

``latency``
    Sleep for ``seconds``, capped at the request budget's remaining
    wall clock so an injected stall can never push a response past
    ``deadline + ε``.
``error``
    Raise :class:`InjectedFaultError` (wire code ``fault-injected``,
    classified *transient* so the batch runner's retry/backoff path is
    exercised end to end) — the stand-in for a worker crash.
``exhaust-budget``
    Slam the request budget's fixed-point iteration cap shut
    (:meth:`~repro.service.resilience.Budget.exhaust_traversals`), so
    the *exact* algorithms blow a structured
    :class:`~repro.service.resilience.BudgetExceededError` from inside
    their own Fig. 7 traversal loop — the organic trigger for the
    engine's sound degradation to the Fig. 13 conservative slicer,
    which performs zero rounds and therefore still completes.
``worker-crash``
    Kill the *process*: in a cluster worker (the plan's
    ``allow_process_exit`` flag is set by
    :mod:`repro.service.cluster`), the worker ``os._exit``\\ s with
    :data:`WORKER_CRASH_EXIT` mid-request — no cleanup, no response,
    exactly what a segfault or an OOM kill looks like to the
    supervisor and the client.  Outside a cluster worker the rule
    degrades to :class:`InjectedFaultError` (still transient), so an
    in-process engine test of a ``worker-crash`` plan exercises the
    retry path rather than killing the test runner.
``store-corruption``
    Arm the engine's durable store so its next write flips one payload
    bit after the checksum is computed
    (:meth:`~repro.service.store.DurableStore.arm_corruption`) — the
    corrupt entry must then be *quarantined*, never served, on the
    next read.  A no-op when the engine has no store.

Determinism is the point: integration tests pin a seed and a schedule
and then *prove* that every failure path produces a structured error or
a sound degraded slice, never a hang or a malformed payload.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.lang.errors import SlangError
from repro.service.resilience import Budget

#: Failure modes a rule may inject.
FAULT_KINDS = (
    "latency",
    "error",
    "exhaust-budget",
    "worker-crash",
    "store-corruption",
)

#: Exit status of a ``worker-crash``-killed cluster worker; chosen to
#: be distinguishable from clean exits and Python tracebacks (1).
WORKER_CRASH_EXIT = 70


class InjectedFaultError(SlangError):
    """A deliberately injected worker failure (wire code
    ``fault-injected``, transient/retryable)."""


@dataclass(frozen=True)
class FaultRule:
    """One match-and-fire rule of a :class:`FaultPlan`.

    ``op``/``algorithm`` of ``None`` match any request.  Exactly one of
    the schedules should be set; when several are, a rule fires only if
    *all* of them say so (and when none is set, it always fires).
    """

    kind: str
    op: Optional[str] = None
    algorithm: Optional[str] = None
    first_n: Optional[int] = None
    every: Optional[int] = None
    rate: Optional[float] = None
    seconds: float = 0.05
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {', '.join(FAULT_KINDS)}"
            )
        if self.rate is not None and not (0.0 <= self.rate <= 1.0):
            raise ValueError("fault rate must be in [0, 1]")
        if self.seconds < 0:
            raise ValueError("fault seconds must be >= 0")

    def matches(self, op: str, algorithm: Optional[str]) -> bool:
        if self.op is not None and self.op != op:
            return False
        if self.algorithm is not None and self.algorithm != algorithm:
            return False
        return True

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultRule":
        known = {
            "kind", "op", "algorithm", "first_n", "every", "rate",
            "seconds", "message",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown fault rule field(s) {sorted(unknown)}"
            )
        if "kind" not in payload:
            raise ValueError("fault rule is missing required field 'kind'")
        return cls(**payload)


class FaultPlan:
    """A seeded, thread-safe schedule of injected failures.

    The per-rule match counters and the shared RNG live under one lock,
    so a plan's decisions depend only on its seed and the *order* in
    which matching requests arrive — fully deterministic under the
    serial batch runner, and per-request reproducible (count-based
    schedules) under concurrency.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        self.rules: List[FaultRule] = list(rules)
        self.seed = seed
        #: Set by the cluster worker entrypoint: a ``worker-crash`` rule
        #: may actually kill this process.  Everywhere else it degrades
        #: to an :class:`InjectedFaultError` so tests survive themselves.
        self.allow_process_exit = False
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._seen = [0] * len(self.rules)
        self._fired = [0] * len(self.rules)

    # -- construction --------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict) or not isinstance(
            payload.get("rules"), list
        ):
            raise ValueError(
                'fault plan must be {"rules": [rule, ...], "seed": int?}'
            )
        seed = payload.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ValueError("fault plan seed must be an int")
        rules = [FaultRule.from_dict(rule) for rule in payload["rules"]]
        return cls(rules, seed=seed)

    @classmethod
    def from_json_file(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    # -- the injection point -------------------------------------------

    def apply(
        self,
        op: str,
        algorithm: Optional[str],
        budget: Budget,
        engine: Any = None,
    ) -> None:
        """Consult every rule for one request; inject what fires.

        Called by the engine after admission, with the request budget
        already installed.  Latency is applied first (and capped at the
        budget's remaining deadline), then store corruption is armed,
        then budget exhaustion, then worker crash, then the injected
        error — so one plan can compose "slow *and* failing".
        """
        sleep_for = 0.0
        exhaust = False
        crash = False
        corrupt = 0
        error: Optional[str] = None
        with self._lock:
            for index, rule in enumerate(self.rules):
                if not rule.matches(op, algorithm):
                    continue
                self._seen[index] += 1
                if not self._should_fire(index, rule):
                    continue
                self._fired[index] += 1
                if rule.kind == "latency":
                    sleep_for = max(sleep_for, rule.seconds)
                elif rule.kind == "exhaust-budget":
                    exhaust = True
                elif rule.kind == "worker-crash":
                    crash = True
                    if error is None:
                        error = rule.message
                elif rule.kind == "store-corruption":
                    corrupt += 1
                elif error is None:
                    error = rule.message
        if sleep_for > 0.0:
            remaining = budget.remaining_seconds()
            if remaining is not None:
                sleep_for = min(sleep_for, remaining)
            time.sleep(sleep_for)
            budget.tick("fault-latency")
        if corrupt:
            store = getattr(engine, "store", None)
            if store is not None:
                store.arm_corruption(corrupt)
        if exhaust:
            budget.exhaust_traversals()
        if crash and self.allow_process_exit:
            # A real crash: no cleanup, no response, no flush.  The
            # supervisor sees the exit status; the client sees a dropped
            # connection and retries against a restarted worker.
            os._exit(WORKER_CRASH_EXIT)
        if error is not None:
            raise InjectedFaultError(error)

    def _should_fire(self, index: int, rule: FaultRule) -> bool:
        seen = self._seen[index]
        if rule.first_n is not None and seen > rule.first_n:
            return False
        if rule.every is not None and seen % rule.every != 0:
            return False
        if rule.rate is not None and self._rng.random() >= rule.rate:
            return False
        return True

    # -- observability -------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Per-rule fire counts for ``/stats`` and test reconciliation."""
        with self._lock:
            return {
                "seed": self.seed,
                "rules": [
                    {
                        "kind": rule.kind,
                        "op": rule.op,
                        "algorithm": rule.algorithm,
                        "seen": seen,
                        "fired": fired,
                    }
                    for rule, seen, fired in zip(
                        self.rules, self._seen, self._fired
                    )
                ],
            }
