"""The versioned JSON request/response protocol of the slicing service.

One schema serves every surface: the HTTP server (``slang serve``), the
batch runner (``slang batch``), and the CLI's ``--json`` mode all build
their payloads here, so a slice answered over HTTP is byte-identical to
the same slice printed by ``slang slice --json`` (both dump with
``sort_keys=True``).

Requests are plain dataclasses with ``from_dict`` constructors that
validate shape and version; malformed input raises
:class:`ProtocolError` (a :class:`SlangError`, so it maps onto the same
structured error payload as analysis failures).  Responses are
envelopes::

    {"ok": true,  "version": 1, "op": "slice", "result": {...}}
    {"ok": false, "version": 1, "op": "slice", "error":  {"code": ...}}

Error payloads carry a stable kebab-case ``code`` derived from the
:class:`SlangError` subclass (``slice-error``, ``parse-error``, …) plus
the human message and, when known, the source location.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.lang.errors import (
    AnalysisError,
    InterpreterError,
    LexError,
    ParseError,
    SlangError,
    SliceError,
    UnreachableCriterionError,
    ValidationError,
)
from repro.service.faults import InjectedFaultError
from repro.service.resilience import (
    BudgetExceededError,
    BudgetSpec,
    OverloadedError,
    PayloadTooLargeError,
)
from repro.slicing.common import SliceResult
from repro.slicing.registry import algorithm_metadata

#: Bumped when the wire schema changes.  Version 2 adds the optional
#: ``proc`` criterion qualifier on slice requests and the
#: ``procedures`` section of multi-procedure slice results; version-1
#: requests remain valid (they simply cannot name a procedure), so
#: both are accepted.
PROTOCOL_VERSION = 2

#: Request versions this service still speaks.
SUPPORTED_VERSIONS = frozenset({1, 2})

#: Stable error codes, most specific class first.
_ERROR_CODES = (
    (LexError, "lex-error"),
    (ParseError, "parse-error"),
    (ValidationError, "validation-error"),
    (AnalysisError, "analysis-error"),
    (UnreachableCriterionError, "unreachable-criterion"),
    (SliceError, "slice-error"),
    (InterpreterError, "interpreter-error"),
    (BudgetExceededError, "budget-exceeded"),
    (OverloadedError, "overloaded"),
    (PayloadTooLargeError, "payload-too-large"),
    (InjectedFaultError, "fault-injected"),
)

#: Codes a client may retry (with backoff): the failure is a property
#: of the moment — load, an injected crash — not of the request.
TRANSIENT_ERROR_CODES = frozenset({"overloaded", "fault-injected"})


class ProtocolError(SlangError):
    """A malformed or unsupported service request."""


def _require(payload: Dict[str, Any], key: str, kind: type) -> Any:
    if key not in payload:
        raise ProtocolError(f"request is missing required field {key!r}")
    value = payload[key]
    if kind is int and isinstance(value, bool):
        raise ProtocolError(f"field {key!r} must be an int, got bool")
    if not isinstance(value, kind):
        raise ProtocolError(
            f"field {key!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def _optional_budget(payload: Dict[str, Any]) -> Optional[BudgetSpec]:
    """Parse the optional per-request ``budget`` object.

    Clients can only *tighten* the engine's configured limits — the
    engine takes the minimum of each dimension — so a hostile budget
    cannot widen a deadline the operator set.
    """
    value = payload.get("budget")
    if value is None:
        return None
    if not isinstance(value, dict):
        raise ProtocolError(
            'field "budget" must be an object like '
            '{"deadline_ms": 500, "max_traversals": 100, '
            '"max_nodes": 20000}'
        )
    try:
        return BudgetSpec.from_dict(value)
    except ValueError as error:
        raise ProtocolError(str(error)) from None


def _optional_trace(payload: Dict[str, Any]) -> bool:
    """Parse the optional ``trace`` flag: ask the engine to run this
    request under a tracer and embed the span tree in the envelope."""
    value = payload.get("trace", False)
    if not isinstance(value, bool):
        raise ProtocolError(
            f'field "trace" must be a boolean, got {type(value).__name__}'
        )
    return value


def _check_version(payload: Dict[str, Any]) -> None:
    version = payload.get("version", PROTOCOL_VERSION)
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"unsupported protocol version {version!r}; "
            f"this service speaks versions "
            f"{sorted(SUPPORTED_VERSIONS)}"
        )


@dataclass(frozen=True)
class SliceRequest:
    """Slice *source* w.r.t. ``<var, line>`` with one algorithm."""

    source: str
    line: int
    var: str
    algorithm: str = "agrawal"
    proc: Optional[str] = None
    budget: Optional[BudgetSpec] = None
    id: Optional[str] = None
    trace: bool = False
    op: str = field(default="slice", init=False)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SliceRequest":
        _check_version(payload)
        proc = payload.get("proc")
        if proc is not None and not isinstance(proc, str):
            raise ProtocolError(
                f'field "proc" must be a string procedure name, '
                f"got {type(proc).__name__}"
            )
        return cls(
            source=_require(payload, "source", str),
            line=_require(payload, "line", int),
            var=_require(payload, "var", str),
            algorithm=payload.get("algorithm", "agrawal"),
            proc=proc,
            budget=_optional_budget(payload),
            id=payload.get("id"),
            trace=_optional_trace(payload),
        )


@dataclass(frozen=True)
class CompareRequest:
    """Run every registered algorithm on one criterion."""

    source: str
    line: int
    var: str
    budget: Optional[BudgetSpec] = None
    id: Optional[str] = None
    trace: bool = False
    op: str = field(default="compare", init=False)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CompareRequest":
        _check_version(payload)
        return cls(
            source=_require(payload, "source", str),
            line=_require(payload, "line", int),
            var=_require(payload, "var", str),
            budget=_optional_budget(payload),
            id=payload.get("id"),
            trace=_optional_trace(payload),
        )


@dataclass(frozen=True)
class GraphRequest:
    """Render one analysis graph (DOT text)."""

    source: str
    kind: str = "cfg"
    budget: Optional[BudgetSpec] = None
    id: Optional[str] = None
    trace: bool = False
    op: str = field(default="graph", init=False)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "GraphRequest":
        _check_version(payload)
        return cls(
            source=_require(payload, "source", str),
            kind=payload.get("kind", "cfg"),
            budget=_optional_budget(payload),
            id=payload.get("id"),
            trace=_optional_trace(payload),
        )


@dataclass(frozen=True)
class MetricsRequest:
    """Ott–Thuss cohesion metrics: slice every output criterion."""

    source: str
    algorithm: str = "agrawal"
    budget: Optional[BudgetSpec] = None
    id: Optional[str] = None
    trace: bool = False
    op: str = field(default="metrics", init=False)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MetricsRequest":
        _check_version(payload)
        return cls(
            source=_require(payload, "source", str),
            algorithm=payload.get("algorithm", "agrawal"),
            budget=_optional_budget(payload),
            id=payload.get("id"),
            trace=_optional_trace(payload),
        )


def _optional_codes(payload: Dict[str, Any], key: str) -> Optional[tuple]:
    """Parse an optional list of diagnostic-code prefixes."""
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise ProtocolError(
            f"field {key!r} must be a list of diagnostic-code strings"
        )
    return tuple(value)


@dataclass(frozen=True)
class CheckRequest:
    """Run the ``slang check`` lint engine over *source*.

    ``select``/``ignore`` are code prefixes (``"SL1"`` matches all
    SL1xx), applied select-first — the same semantics as the CLI flags.
    """

    source: str
    select: Optional[tuple] = None
    ignore: Optional[tuple] = None
    budget: Optional[BudgetSpec] = None
    id: Optional[str] = None
    trace: bool = False
    op: str = field(default="check", init=False)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CheckRequest":
        _check_version(payload)
        return cls(
            source=_require(payload, "source", str),
            select=_optional_codes(payload, "select"),
            ignore=_optional_codes(payload, "ignore"),
            budget=_optional_budget(payload),
            id=payload.get("id"),
            trace=_optional_trace(payload),
        )


ServiceRequest = Union[
    SliceRequest, CompareRequest, GraphRequest, MetricsRequest, CheckRequest
]

_REQUEST_TYPES = {
    "slice": SliceRequest,
    "compare": CompareRequest,
    "graph": GraphRequest,
    "metrics": MetricsRequest,
    "check": CheckRequest,
}


def request_from_dict(payload: Any) -> ServiceRequest:
    """Parse one request payload, dispatching on its ``op`` field."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    op = payload.get("op", "slice")
    if op not in _REQUEST_TYPES:
        raise ProtocolError(
            f"unknown op {op!r}; known ops: "
            f"{', '.join(sorted(_REQUEST_TYPES))}"
        )
    return _REQUEST_TYPES[op].from_dict(payload)


def request_from_json(text: str) -> ServiceRequest:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"request is not valid JSON: {error}") from None
    return request_from_dict(payload)


def request_to_dict(request: ServiceRequest) -> Dict[str, Any]:
    """Serialise a request for the wire (round-trip of ``from_dict``)."""
    payload: Dict[str, Any] = {"op": request.op, "version": PROTOCOL_VERSION}
    for key in ("source", "line", "var", "algorithm", "proc", "kind", "select", "ignore", "id"):
        value = getattr(request, key, None)
        if value is not None:
            payload[key] = list(value) if isinstance(value, tuple) else value
    budget = getattr(request, "budget", None)
    if budget is not None:
        payload["budget"] = budget.to_dict()
    if getattr(request, "trace", False):
        payload["trace"] = True
    return payload


# ---------------------------------------------------------------------------
# Response payloads


def slice_result_payload(result: SliceResult) -> Dict[str, Any]:
    """The canonical JSON view of one :class:`SliceResult`.

    Used verbatim by ``slang slice --json``, the ``/slice`` endpoint,
    and each row of a ``/compare`` response.
    """
    statements = result.statement_nodes()
    criterion: Dict[str, Any] = {
        "line": result.criterion.line,
        "var": result.criterion.var,
    }
    if getattr(result.criterion, "proc", None) is not None:
        criterion["proc"] = result.criterion.proc
    payload: Dict[str, Any] = {
        "algorithm": result.algorithm,
        "criterion": criterion,
        "nodes": statements,
        "lines": result.lines(),
        "size": len(statements),
        "traversals": result.traversals,
        "label_map": {
            label: node for label, node in sorted(result.label_map.items())
        },
        "notes": list(result.notes),
    }
    # Multi-procedure slices carry the per-unit breakdown; single-unit
    # payloads are unchanged from protocol version 1 byte for byte.
    sdg_result = getattr(result, "sdg_result", None)
    if sdg_result is not None and sdg_result.sdg.program.procs:
        payload["procedures"] = {
            unit: {
                "nodes": sdg_result.statement_nodes(unit),
                "label_map": {
                    label: node
                    for label, node in sorted(
                        sdg_result.label_maps.get(unit, {}).items()
                    )
                },
            }
            for unit in sdg_result.units()
        }
        payload["lines"] = sdg_result.lines()
        payload["summary_edges"] = sdg_result.sdg.summary_edges
    return payload


def error_payload(error: BaseException) -> Dict[str, Any]:
    """Map an exception onto the structured error schema."""
    code = "internal-error"
    if isinstance(error, ProtocolError):
        code = "protocol-error"
    elif isinstance(error, SlangError):
        code = "slang-error"
        for klass, klass_code in _ERROR_CODES:
            if isinstance(error, klass):
                code = klass_code
                break
    elif isinstance(error, ValueError):
        # get_algorithm / render_all raise ValueError on unknown names.
        code = "bad-request"
    payload: Dict[str, Any] = {"code": code, "message": str(error)}
    payload["retryable"] = code in TRANSIENT_ERROR_CODES
    location = getattr(error, "location", None)
    if location is not None:
        payload["location"] = {"line": location.line, "column": location.column}
    if isinstance(error, BudgetExceededError):
        payload["reason"] = error.reason
        payload["phase"] = error.phase
    retry_after = getattr(error, "retry_after", None)
    if retry_after is not None:
        payload["retry_after"] = retry_after
    return payload


def ok_envelope(
    op: str, result: Dict[str, Any], request_id: Optional[str] = None
) -> Dict[str, Any]:
    envelope: Dict[str, Any] = {
        "ok": True,
        "version": PROTOCOL_VERSION,
        "op": op,
        "result": result,
    }
    if request_id is not None:
        envelope["id"] = request_id
    return envelope


def error_envelope(
    op: str, error: BaseException, request_id: Optional[str] = None
) -> Dict[str, Any]:
    envelope: Dict[str, Any] = {
        "ok": False,
        "version": PROTOCOL_VERSION,
        "op": op,
        "error": error_payload(error),
    }
    if request_id is not None:
        envelope["id"] = request_id
    return envelope


def capabilities_payload() -> Dict[str, Any]:
    """``GET /algorithms``: names plus correctness classes, so clients
    can avoid submitting structured-only algorithms on goto-ridden
    programs (the service rejects those with ``slice-error``)."""
    metadata = algorithm_metadata()
    return {
        "version": PROTOCOL_VERSION,
        "algorithms": [
            {"name": name, "capability": capability}
            for name, capability in sorted(metadata.items())
        ],
    }


def dump_json(payload: Dict[str, Any]) -> str:
    """The one serialisation every surface uses (stable key order, so
    CLI output and HTTP bodies are byte-identical)."""
    return json.dumps(payload, sort_keys=True, separators=(", ", ": "))
