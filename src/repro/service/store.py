"""The durable on-disk content-addressed analysis store (DESIGN.md §13).

The in-memory caches (the :class:`~repro.service.cache.AnalysisCache`
and the per-analysis slice memos) die with the process.  This module is
the second tier: a directory of checksummed slice-result blobs, keyed by
the same content address the memory tier already uses, shared by every
worker of a cluster and surviving worker crashes and full restarts — a
restarted server answers its warm set from disk without re-running any
analysis at all.

Durability discipline, in order of importance:

**Atomic visibility.**  ``put`` writes to a temp file *in the same
directory*, flushes, ``fsync``\\ s, then ``os.replace``\\ s onto the
final name.  A crash mid-write leaves only a ``*.tmp.*`` orphan (swept
on the next startup) — a reader can never observe a half-written entry
under its real key, because the final name either does not exist or
holds complete bytes.

**Checksums over trust.**  Every entry carries a header line
``slangstore1 <sha256-of-payload> <payload-length>`` ahead of the
payload.  ``get`` re-hashes what it read; any mismatch (bit rot, a torn
page, a hostile writer) **quarantines** the entry — the file is moved
into ``quarantine/``, counted, and ``None`` is returned so the caller
recomputes.  A corrupt entry is therefore *never served*; it is also
never silently deleted, so an operator can inspect what went bad.

**Bounded size.**  The store tracks its approximate payload footprint
and evicts least-recently-*used* entries (access bumps mtime) once
``max_bytes`` is exceeded.  Multiple worker processes share one root
safely: ``os.replace`` is atomic within a filesystem, checksums catch
any interleaving the rename discipline does not, and eviction races
degrade to harmless ``FileNotFoundError``\\ s.

Fault injection: :meth:`DurableStore.arm_corruption` makes the next
``put`` flip one payload bit *after* the checksum is computed — the
deterministic ``store-corruption`` fault the chaos plan uses to prove
the quarantine path end to end.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.tracer import trace_event, trace_span

#: Default footprint bound: generous for test corpora, small enough
#: that a runaway client cannot fill a disk.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Entry-format magic; bump to invalidate every existing entry.
_MAGIC = b"slangstore1"


def payload_store_key(
    analysis_key: str,
    algorithm: str,
    line: int,
    var: str,
    proc: Optional[str] = None,
) -> str:
    """The content address of one slice-result payload: the program's
    analysis key (source hash + analysis options) plus everything else
    that determines the answer.  ``v1`` pins the stored-wrapper schema.
    """
    digest = hashlib.sha256()
    digest.update(
        f"slice-payload|v1|{analysis_key}|{algorithm}|{line}|{var}|"
        f"{proc or ''}".encode("utf-8")
    )
    return digest.hexdigest()


def units_store_key(
    units_digest: str,
    algorithm: str,
    line: int,
    var: str,
    proc: Optional[str] = None,
) -> str:
    """The *per-unit* sub-key of one slice-result payload.

    ``units_digest`` is the digest over the program's per-procedure
    content fingerprints (:func:`repro.service.incremental.units_digest`)
    — the program's identity *modulo formatting*.  Payloads are written
    under both this key and :func:`payload_store_key`, so a client that
    re-submits a program after a comment or whitespace edit (a new
    source hash, identical unit fingerprints) still hits the disk tier
    without any analysis build.
    """
    digest = hashlib.sha256()
    digest.update(
        f"slice-payload-units|v1|{units_digest}|{algorithm}|{line}|{var}|"
        f"{proc or ''}".encode("utf-8")
    )
    return digest.hexdigest()


class DurableStore:
    """A checksummed, size-bounded, multi-process-safe blob store.

    Parameters
    ----------
    root:
        Directory holding ``objects/`` and ``quarantine/``; created on
        first use.  Workers of one cluster all point at the same root.
    max_bytes:
        Approximate payload-byte bound; least-recently-used entries are
        evicted when a ``put`` would exceed it.  ``<= 0`` disables the
        bound (never evict).
    fsync:
        Whether ``put`` fsyncs before renaming.  On by default — the
        durability story depends on it; tests that hammer the store may
        turn it off.
    """

    def __init__(
        self,
        root: str,
        max_bytes: int = DEFAULT_MAX_BYTES,
        fsync: bool = True,
    ) -> None:
        self.root = root
        self.max_bytes = max_bytes
        self.fsync = fsync
        self._objects = os.path.join(root, "objects")
        self._quarantine = os.path.join(root, "quarantine")
        os.makedirs(self._objects, exist_ok=True)
        os.makedirs(self._quarantine, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.quarantined = 0
        self.errors = 0
        self._corrupt_next = 0
        self._bytes = self._sweep_and_measure()

    # -- paths ---------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self._objects, key[:2], key)

    def _sweep_and_measure(self) -> int:
        """Delete crash orphans (``*.tmp.*`` temp files) and return the
        payload footprint of the surviving entries."""
        total = 0
        for dirpath, _, filenames in os.walk(self._objects):
            for name in filenames:
                path = os.path.join(dirpath, name)
                if ".tmp." in name:
                    try:
                        os.remove(path)
                    except OSError:
                        pass
                    continue
                try:
                    total += os.stat(path).st_size
                except OSError:
                    pass
        return total

    # -- the two-tier read path ----------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        """The payload stored under *key*, or ``None`` (miss *or*
        quarantined corruption — the caller recomputes either way)."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except OSError:
            with self._lock:
                self.errors += 1
                self.misses += 1
            return None
        payload = self._verify(blob)
        if payload is None:
            self._do_quarantine(key, path)
            return None
        try:
            os.utime(path)  # LRU recency for the eviction scan
        except OSError:
            pass
        with self._lock:
            self.hits += 1
        return payload

    @staticmethod
    def _verify(blob: bytes) -> Optional[bytes]:
        """Parse and checksum one entry; ``None`` means corrupt."""
        header, sep, payload = blob.partition(b"\n")
        if not sep:
            return None
        parts = header.split(b" ")
        if len(parts) != 3 or parts[0] != _MAGIC:
            return None
        want_digest, want_length = parts[1], parts[2]
        try:
            length = int(want_length)
        except ValueError:
            return None
        if length != len(payload):
            return None
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        if digest != want_digest:
            return None
        return payload

    def _do_quarantine(self, key: str, path: str) -> None:
        """Move a corrupt entry aside — never serve it, never lose it."""
        target = os.path.join(self._quarantine, os.path.basename(path))
        try:
            size = os.stat(path).st_size
        except OSError:
            size = 0
        try:
            os.replace(path, target)
        except OSError:
            try:
                os.remove(path)
            except OSError:
                pass
        with self._lock:
            self.quarantined += 1
            self.misses += 1
            self._bytes = max(0, self._bytes - size)
        trace_event("store-quarantine", key=key)

    # -- the write path ------------------------------------------------

    def put(self, key: str, payload: bytes) -> bool:
        """Durably store *payload* under *key* (atomic write-rename).

        Returns False (and counts an error) when the filesystem refuses;
        the store is a cache, so a failed put is not fatal.
        """
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        with self._lock:
            if self._corrupt_next > 0:
                self._corrupt_next -= 1
                # Flip one payload bit after the checksum: the entry on
                # disk is wrong and the next read must quarantine it.
                payload = bytes([payload[0] ^ 0x01]) + payload[1:]
                trace_event("store-corruption-injected", key=key)
        blob = (
            _MAGIC + b" " + digest + b" "
            + str(len(payload)).encode("ascii") + b"\n" + payload
        )
        directory = os.path.dirname(self._path(key))
        try:
            os.makedirs(directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                prefix=key + ".tmp.", dir=directory
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                    handle.flush()
                    if self.fsync:
                        os.fsync(handle.fileno())
                os.replace(temp_path, self._path(key))
            except BaseException:
                try:
                    os.remove(temp_path)
                except OSError:
                    pass
                raise
        except OSError:
            with self._lock:
                self.errors += 1
            return False
        with self._lock:
            self.puts += 1
            self._bytes += len(blob)
            over = (
                self.max_bytes > 0 and self._bytes > self.max_bytes
            )
        if over:
            self._evict()
        return True

    def _evict(self) -> None:
        """Drop least-recently-used entries until back under the bound.

        Runs outside the counter lock (directory scans are slow); races
        between workers degrade to ``FileNotFoundError``, which is
        ignored — the other worker simply evicted first.
        """
        entries: List[Tuple[float, int, str]] = []
        total = 0
        for dirpath, _, filenames in os.walk(self._objects):
            for name in filenames:
                if ".tmp." in name:
                    continue
                path = os.path.join(dirpath, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
        entries.sort()
        evicted = 0
        for _, size, path in entries:
            if self.max_bytes <= 0 or total <= self.max_bytes:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            evicted += 1
        with self._lock:
            self._bytes = total
            self.evictions += evicted

    # -- JSON convenience (the engine's unit of storage) ---------------

    def get_json(self, key: str) -> Optional[Any]:
        with trace_span("store-lookup") as span:
            payload = self.get(key)
            span.set(hit=payload is not None)
        if payload is None:
            return None
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            # Checksummed-but-unparseable means a writer stored garbage
            # under a good checksum; treat exactly like corruption.
            self._do_quarantine(key, self._path(key))
            with self._lock:
                self.hits -= 1  # the get above counted a hit
            return None

    def put_json(self, key: str, payload: Any) -> bool:
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return self.put(key, blob)

    # -- chaos / observability -----------------------------------------

    def arm_corruption(self, count: int = 1) -> None:
        """Make the next *count* puts write a corrupt entry (checksum
        computed before a bit flip) — the ``store-corruption`` fault."""
        with self._lock:
            self._corrupt_next += count

    def entry_count(self) -> int:
        count = 0
        for _, _, filenames in os.walk(self._objects):
            count += sum(1 for name in filenames if ".tmp." not in name)
        return count

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for ``/stats`` (``store`` key) and tests."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "root": self.root,
                "max_bytes": self.max_bytes,
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
                "quarantined": self.quarantined,
                "errors": self.errors,
                "hit_rate": round(self.hits / total, 4) if total else 0.0,
            }
