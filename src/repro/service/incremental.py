"""Incremental re-analysis under edit churn (DESIGN.md §14).

The dominant maintenance traffic shape — an IDE or CI fleet re-querying
slices after small edits — used to invalidate the whole
:class:`~repro.pdg.builder.ProgramAnalysis` on any byte change: the
analysis cache keys by the SHA-256 of the *source text*, so touching one
procedure rebuilt every unit's CFG, postdominator tree, LST, dependence
graphs, and closure index from scratch.

This module keys the expensive artefacts by **per-unit content
fingerprints** instead.  A program is split at ``proc`` boundaries
(single-proc programs are one unit, ``main``); each unit's fingerprint
covers exactly what its analysis consumes:

* the analysis options (they change CFG shape);
* the unit's kind, name and parameter list;
* the canonical pretty-printed body (so comment and whitespace edits
  do not invalidate anything);
* the absolute source line of every statement (analyses carry absolute
  lines — a unit whose text is unchanged but whose lines shifted is a
  *different* unit);
* the unit's own :class:`~repro.sdg.params.ParamSignature` and those of
  its **direct callees** — the CFG builder shapes call-site node chains
  from callee signatures (declared params plus the transitive-IO
  ``$in`` position), so a deep edit that flips a callee's IO-ness
  correctly dirties every direct caller.

An edit to one procedure then salvages every untouched unit's analysis
from the :class:`UnitCache`: the cached CFG/PDT/LST/CDG/DDG/PDG objects
are shared into a fresh :class:`ProgramAnalysis` *shell* (new program
object, fresh slice memo / SDG / content-key slots, so nothing staled
can leak across programs), and the PDG's condensed closure index —
built lazily on the shared graph — survives the edit with it.

Interprocedural programs additionally reuse the *stitched* per-unit
slicing graphs.  Summary edges at a call site depend only on the
caller's own content and the callee's formal-in→formal-out dependence
pairs, so stitched graphs are cached under an *assumption key* =
(unit fingerprint, every direct callee's pairs).  Assembly walks the
call graph's SCC condensation callees-first:

* a non-recursive unit whose assumption key hits reuses the stitched
  local graph (summary edges and closure index included) verbatim;
* a recursive SCC is always rebuilt by the original worklist from empty
  seeds — pairs can *shrink* under an edit, and seeding the fixpoint
  with stale pairs would overshoot the least fixed point.  Callees-first
  evaluation with empty seeds reproduces exactly the least fixpoint the
  monolithic worklist computes, so summary-edge sets (and the
  ``summary_edges`` count the protocol exposes) are identical.

Two further salvage tiers close the gap between "rebuild one unit" and
"answer without recomputing":

* **Selective re-parse** — :func:`split_source` cuts the raw text at
  top-level ``proc`` boundaries (comment- and brace-aware); a span
  whose exact text *and* start line are unchanged reuses its parsed AST
  from the span cache, so an edit to one procedure re-parses only that
  procedure (line numbers are reproduced by padding the span with
  newlines).  Sources whose layout the splitter does not recognise —
  statements between or after ``proc`` blocks, unbalanced braces —
  fall back to the ordinary whole-source parse, errors included.
* **Slice-result salvage** — the interprocedural slicer records each
  fully-computed :class:`~repro.sdg.slicer.SDGSliceResult` together
  with the unit digests, every unit's formal dependence pairs, and the
  program-wide summary count it was computed under.  After an edit the
  stored result is replayed only when *every* dirty unit (a) is outside
  the recorded slice, (b) kept its formal-in→formal-out pairs, and
  (c) did not gain a statement at the criterion line, and the global
  summary count is unchanged — conditions under which the two-pass
  traversal provably never observes the edit (it enters a unit only
  through call sites in units already in the slice, and crosses
  non-slice callees only via summary edges, which the pair equality
  freezes).

Degraded (budget-shaped) results are never salvaged or stored — a
budget abort raises before the slicer reaches the record step, and the
engine's degrade path (see ``SlicingEngine._degrade``) never feeds the
memo/store tiers.

The process-wide knob (CLI ``--incremental on|off``) mirrors
:mod:`repro.pdg.closure`: incremental reuse is pure acceleration — the
differential property suite asserts node-for-node identity with a cold
rebuild — so it defaults on.
"""

from __future__ import annotations

import contextlib
import hashlib
import re
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lang.ast_nodes import MAIN_UNIT, ProcDecl, Program, Stmt, walk_statements
from repro.lang.errors import SlangError
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty
from repro.obs.tracer import trace_span
from repro.pdg.builder import ProgramAnalysis, analyze_program
from repro.pdg.graph import ProgramDependenceGraph
from repro.sdg.callgraph import CallGraph, build_call_graph
from repro.sdg.params import ParamSignature, signatures
from repro.service.resilience import budget_check_nodes, budget_round, budget_tick

#: Fingerprint schema version; bump to invalidate every cached unit.
FINGERPRINT_VERSION = "v1"

#: Process-wide enablement knob (CLI ``--incremental on|off``).
_enabled = True


def incremental_enabled() -> bool:
    return _enabled


def set_incremental_enabled(enabled: bool) -> None:
    global _enabled
    _enabled = bool(enabled)


@contextlib.contextmanager
def incremental(enabled: bool) -> Iterator[None]:
    """Temporarily force incremental reuse on or off (tests, benches)."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    try:
        yield
    finally:
        _enabled = previous


# ---------------------------------------------------------------------------
# Unit fingerprints
# ---------------------------------------------------------------------------


def _signature_facts(sig: ParamSignature) -> str:
    return f"{sig.name}({','.join(sig.declared)})io={int(sig.io)}"


def unit_fingerprints(
    program: Program,
    fuse_cond_goto: bool = True,
    chain_io: bool = True,
    dominator_algorithm: str = "iterative",
    graph: Optional[CallGraph] = None,
) -> Dict[str, str]:
    """Per-unit content addresses: unit name → hex digest.

    Two units with equal fingerprints produce identical analyses
    (CFG/PDT/LST/CDG/DDG/PDG, node ids, absolute lines) under the same
    options — the invariant every salvage below rests on.
    """
    if graph is None:
        graph = build_call_graph(program)
    sigs = signatures(program, graph)
    header = (
        f"{FINGERPRINT_VERSION}|{int(fuse_cond_goto)}|{int(chain_io)}|"
        f"{dominator_algorithm}|"
    )
    out: Dict[str, str] = {}
    for unit, body in program.units():
        digest = hashlib.sha256()
        digest.update(header.encode("utf-8"))
        sig = sigs[unit]
        digest.update(f"unit:{_signature_facts(sig)}\n".encode("utf-8"))
        for callee in sorted(graph.callees.get(unit, ())):
            digest.update(
                f"callee:{_signature_facts(sigs[callee])}\n".encode("utf-8")
            )
        lines: List[int] = []
        for top in body:
            digest.update(pretty(top).encode("utf-8"))
            digest.update(b"\x00")
            for stmt in walk_statements(top):
                lines.append(stmt.line)
        digest.update(("lines:" + ",".join(map(str, lines))).encode("utf-8"))
        out[unit] = digest.hexdigest()
    return out


def units_digest(fingerprints: Dict[str, str]) -> str:
    """One digest over the whole per-unit fingerprint vector — the
    content address of the *program modulo formatting* (plus options),
    used for durable-store sub-keys."""
    digest = hashlib.sha256()
    digest.update(b"units|" + FINGERPRINT_VERSION.encode("utf-8"))
    for unit in sorted(fingerprints):
        digest.update(f"|{unit}={fingerprints[unit]}".encode("utf-8"))
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Selective re-parse
# ---------------------------------------------------------------------------

_PROC_HEADER = re.compile(r"proc\b")


@dataclass(frozen=True)
class SourceSpan:
    """One top-level textual region: the main prefix or one ``proc``."""

    kind: str  # "main" | "proc"
    text: str
    start_line: int  # 1-based


def _strip_comments(line: str, in_block: bool) -> Tuple[str, bool]:
    """Code content of one line, tracking ``/* */`` state across lines."""
    out: List[str] = []
    i = 0
    while i < len(line):
        if in_block:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), True
            i = end + 2
            in_block = False
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            in_block = True
            i += 2
            continue
        out.append(line[i])
        i += 1
    return "".join(out), in_block


def split_source(source: str) -> Optional[List[SourceSpan]]:
    """Cut *source* at top-level ``proc`` boundaries.

    Returns the main prefix span followed by one span per procedure
    block, or ``None`` when the layout is not the canonical
    main-then-procs shape (statements between or after procedures,
    unbalanced braces, an unterminated block comment) — callers then
    fall back to the whole-source parse, which raises the canonical
    error for genuinely malformed input.  Blank and comment-only lines
    *between* procedures belong to no span: they carry no AST and their
    effect on line numbers is captured by the next span's start line.
    """
    lines = source.splitlines()
    spans: List[SourceSpan] = []
    in_block = False
    depth = 0
    proc_start: Optional[int] = None  # 0-based first line of open proc
    seen_brace = False
    main_end: Optional[int] = None  # 0-based exclusive end of main prefix
    for index, line in enumerate(lines):
        code, in_block_after = _strip_comments(line, in_block)
        stripped = code.strip()
        if proc_start is None:
            starts_proc = (
                depth == 0
                and not in_block
                and _PROC_HEADER.match(stripped) is not None
            )
            if starts_proc:
                if main_end is None:
                    main_end = index
                proc_start = index
                seen_brace = False
            elif main_end is not None and stripped:
                return None  # code between/after procs: unsupported
        if proc_start is not None:
            depth += code.count("{") - code.count("}")
            if depth < 0:
                return None
            seen_brace = seen_brace or "{" in code
            if seen_brace and depth == 0:
                spans.append(
                    SourceSpan(
                        kind="proc",
                        text="\n".join(lines[proc_start : index + 1]),
                        start_line=proc_start + 1,
                    )
                )
                proc_start = None
        elif stripped:
            depth += code.count("{") - code.count("}")
            if depth < 0:
                return None
        in_block = in_block_after
    if in_block or depth != 0 or proc_start is not None:
        return None
    if main_end is None:
        main_end = len(lines)
    main_text = "\n".join(lines[:main_end])
    return [
        SourceSpan(kind="main", text=main_text, start_line=1)
    ] + spans


def _span_key(span: SourceSpan) -> Tuple[str, str, int]:
    digest = hashlib.sha256(span.text.encode("utf-8")).hexdigest()
    return (span.kind, digest, span.start_line)


def incremental_parse(source: str, cache: "UnitCache") -> Program:
    """Parse *source*, reusing span ASTs for textually unchanged units.

    A span hit requires the exact text **and** the exact start line —
    both are part of the key — so reused statements carry correct
    absolute line numbers by construction.  Misses re-parse only their
    own span, padded with newlines to reproduce absolute lines.  Any
    irregularity (unsupported layout, a span that does not parse to the
    expected shape) falls back to :func:`parse_program` on the whole
    source, so error behaviour is byte-identical to the monolithic
    path.

    The reused AST nodes are shared across program objects, exactly as
    the cached analyses already share them (DESIGN.md §7: analyses and
    their ASTs are immutable after construction).
    """
    spans = split_source(source)
    if spans is None:
        return parse_program(source)
    body: List[Stmt] = []
    procs: List[ProcDecl] = []
    for span in spans:
        key = _span_key(span)
        node = cache.get_span(key)
        if node is None:
            cache.stats.record("spans_parsed")
            if span.kind == "main" and not span.text.strip():
                node = []
            else:
                padded = "\n" * (span.start_line - 1) + span.text
                try:
                    parsed = parse_program(padded)
                except SlangError:
                    return parse_program(source)
                if span.kind == "main":
                    if parsed.procs:
                        return parse_program(source)
                    node = parsed.body
                else:
                    if parsed.body or len(parsed.procs) != 1:
                        return parse_program(source)
                    node = parsed.procs[0]
            cache.put_span(key, node)
        else:
            cache.stats.record("spans_reused")
        if span.kind == "main":
            body = list(node)
        else:
            procs.append(node)
    return Program(body=body, source=source, procs=procs)


# ---------------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------------


class IncrementalStats:
    """Thread-safe reuse counters, surfaced under ``/stats`` →
    ``incremental`` and as ``slang_incremental_*`` Prometheus families."""

    FIELDS = (
        "programs",
        "spans_reused",
        "spans_parsed",
        "units_reused",
        "units_built",
        "stitched_reused",
        "stitched_built",
        "recursive_rebuilt",
        "slices_salvaged",
        "indexes_salvaged",
        "store_unit_hits",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self.FIELDS}

    def record(self, name: str, count: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + count

    def reset(self) -> None:
        with self._lock:
            for name in list(self._counts):
                self._counts[name] = 0

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)


# ---------------------------------------------------------------------------
# The unit cache
# ---------------------------------------------------------------------------


@dataclass
class StitchedUnit:
    """One unit's slicing graph under one callee-pairs assumption.

    ``local`` is shared across programs and **must not be mutated** —
    the SDG slicer only reads it (and lazily builds its closure index,
    which is idempotent); ``compute_summary_edges`` never runs on it.
    """

    local: ProgramDependenceGraph
    pairs: FrozenSet[Tuple[int, int]]
    summary_count: int


@dataclass
class UnitRecord:
    """Everything cached for one unit fingerprint."""

    analysis: ProgramAnalysis
    #: assumption key → stitched graph (bounded LRU, newest last).
    stitched: "OrderedDict[str, StitchedUnit]" = field(
        default_factory=OrderedDict
    )


@dataclass
class SliceSalvageRecord:
    """One fully-computed interprocedural slice plus the facts that
    decide whether an edited program may replay it (see the module
    docstring's slice-result salvage conditions)."""

    digests: Dict[str, str]
    slice_units: FrozenSet[str]
    pairs: Dict[str, FrozenSet[Tuple[int, int]]]
    summary_total: int
    sdg_result: object  # SDGSliceResult (deferred type; avoids a cycle)


class UnitCache:
    """An LRU map ``unit fingerprint → UnitRecord``.

    Shared by the :class:`~repro.service.cache.AnalysisCache` (main-unit
    salvage) and the incremental SDG assembly (procedure units and
    stitched graphs).  The cached ``ProgramAnalysis`` objects are safe
    to share for the same reason the analysis cache's are: immutable
    after construction (DESIGN.md §7), with per-program mutable slots
    (slice memo, SDG, content key) living on the *shells*, never on the
    cached record.
    """

    def __init__(
        self,
        capacity: int = 512,
        stitched_per_unit: int = 4,
        span_capacity: int = 2048,
        slice_capacity: int = 256,
        index_capacity: int = 8,
    ) -> None:
        self.capacity = capacity
        self.stitched_per_unit = stitched_per_unit
        self.span_capacity = span_capacity
        self.slice_capacity = slice_capacity
        self.index_capacity = index_capacity
        self._records: "OrderedDict[str, UnitRecord]" = OrderedDict()
        self._spans: "OrderedDict[Tuple[str, str, int], object]" = (
            OrderedDict()
        )
        self._slices: "OrderedDict[Tuple, SliceSalvageRecord]" = (
            OrderedDict()
        )
        #: sdg-index assumption key → SDGClosureIndex (bounded LRU).
        self._indexes: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = IncrementalStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def get_unit(self, unit_key: str) -> Optional[UnitRecord]:
        with self._lock:
            record = self._records.get(unit_key)
            if record is not None:
                self._records.move_to_end(unit_key)
            return record

    def put_unit(
        self, unit_key: str, analysis: ProgramAnalysis
    ) -> UnitRecord:
        with self._lock:
            record = self._records.get(unit_key)
            if record is not None:
                self._records.move_to_end(unit_key)
                return record
            record = UnitRecord(analysis=analysis)
            if self.capacity > 0:
                self._records[unit_key] = record
                while len(self._records) > self.capacity:
                    self._records.popitem(last=False)
            return record

    def get_stitched(
        self, unit_key: str, assume_key: str
    ) -> Optional[StitchedUnit]:
        with self._lock:
            record = self._records.get(unit_key)
            if record is None:
                return None
            stitched = record.stitched.get(assume_key)
            if stitched is not None:
                record.stitched.move_to_end(assume_key)
            return stitched

    def put_stitched(
        self, unit_key: str, assume_key: str, stitched: StitchedUnit
    ) -> StitchedUnit:
        with self._lock:
            record = self._records.get(unit_key)
            if record is None:
                return stitched
            existing = record.stitched.get(assume_key)
            if existing is not None:
                record.stitched.move_to_end(assume_key)
                return existing
            record.stitched[assume_key] = stitched
            while len(record.stitched) > self.stitched_per_unit:
                record.stitched.popitem(last=False)
            return stitched

    def get_span(self, key: Tuple[str, str, int]) -> Optional[object]:
        with self._lock:
            node = self._spans.get(key)
            if node is not None:
                self._spans.move_to_end(key)
            return node

    def put_span(self, key: Tuple[str, str, int], node: object) -> None:
        with self._lock:
            if key in self._spans:
                self._spans.move_to_end(key)
                return
            if self.span_capacity > 0:
                self._spans[key] = node
                while len(self._spans) > self.span_capacity:
                    self._spans.popitem(last=False)

    def get_slice(self, key: Tuple) -> Optional[SliceSalvageRecord]:
        with self._lock:
            record = self._slices.get(key)
            if record is not None:
                self._slices.move_to_end(key)
            return record

    def put_slice(self, key: Tuple, record: SliceSalvageRecord) -> None:
        with self._lock:
            self._slices[key] = record
            self._slices.move_to_end(key)
            while len(self._slices) > max(self.slice_capacity, 1):
                self._slices.popitem(last=False)

    def get_index(self, key: str) -> Optional[object]:
        """A salvaged whole-SDG closure index (repro.sdg.closure), keyed
        by the unit-digest vector plus per-unit formal pairs — the same
        assumptions the summary edges were computed under.  Counted as
        ``indexes_salvaged`` by the caller on a validated hit."""
        with self._lock:
            index = self._indexes.get(key)
            if index is not None:
                self._indexes.move_to_end(key)
            return index

    def put_index(self, key: str, index: object) -> None:
        with self._lock:
            self._indexes[key] = index
            self._indexes.move_to_end(key)
            while len(self._indexes) > max(self.index_capacity, 1):
                self._indexes.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._spans.clear()
            self._slices.clear()
            self._indexes.clear()

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            entries = len(self._records)
            stitched = sum(
                len(record.stitched) for record in self._records.values()
            )
            spans = len(self._spans)
            slices = len(self._slices)
            indexes = len(self._indexes)
        payload: Dict[str, object] = {
            "enabled": incremental_enabled(),
            "capacity": self.capacity,
            "entries": entries,
            "stitched_entries": stitched,
            "span_entries": spans,
            "slice_entries": slices,
            "index_entries": indexes,
        }
        payload.update(self.stats.snapshot())
        return payload


# ---------------------------------------------------------------------------
# Analysis salvage
# ---------------------------------------------------------------------------


def _shell(cached: ProgramAnalysis, program: Program) -> ProgramAnalysis:
    """A fresh :class:`ProgramAnalysis` sharing *cached*'s immutable
    artefacts, carrying the **new** program object.

    The heavy graphs (CFG, trees, dependence graphs, reaching fixpoint)
    and the derived pure-function-of-CFG indexes are shared; the
    per-program mutable slots — slice memo, content key, SDG — start
    empty, so a stale memo entry or a stale SDG can never be served for
    a different program.
    """
    return ProgramAnalysis(
        program=program,
        cfg=cached.cfg,
        pdt=cached.pdt,
        lst=cached.lst,
        cdg=cached.cdg,
        ddg=cached.ddg,
        pdg=cached.pdg,
        reaching=cached.reaching,
        _augmented_cfg=cached._augmented_cfg,
        _augmented_pdg=cached._augmented_pdg,
        _reaching_index=cached._reaching_index,
        _line_index=cached._line_index,
        _goto_sites=cached._goto_sites,
    )


def incremental_analyze(
    source: str,
    fuse_cond_goto: bool = True,
    chain_io: bool = True,
    dominator_algorithm: str = "iterative",
    cache: Optional[UnitCache] = None,
) -> ProgramAnalysis:
    """Analyse *source*, salvaging the main unit from *cache* when its
    fingerprint matches a previously analysed unit.

    Always attaches ``_unit_digests`` / ``_unit_cache`` to the returned
    analysis so the SDG builder and the durable-store read path can
    reuse the fingerprints without re-deriving them.
    """
    if cache is None:
        cache = UnitCache()
    with trace_span("parse", bytes=len(source), incremental=True):
        program = incremental_parse(source, cache)
    graph = build_call_graph(program)
    with trace_span("unit-fingerprints", units=len(graph.units)):
        digests = unit_fingerprints(
            program,
            fuse_cond_goto=fuse_cond_goto,
            chain_io=chain_io,
            dominator_algorithm=dominator_algorithm,
            graph=graph,
        )
    cache.stats.record("programs")
    record = cache.get_unit(digests[MAIN_UNIT])
    if record is not None:
        cache.stats.record("units_reused")
        analysis = _shell(record.analysis, program)
    else:
        cache.stats.record("units_built")
        analysis = analyze_program(
            program,
            fuse_cond_goto=fuse_cond_goto,
            chain_io=chain_io,
            dominator_algorithm=dominator_algorithm,
        )
        cache.put_unit(digests[MAIN_UNIT], analysis)
    analysis._unit_digests = digests
    analysis._unit_cache = cache
    return analysis


# ---------------------------------------------------------------------------
# Incremental SDG assembly
# ---------------------------------------------------------------------------


def _pairs_assumption_key(
    unit_key: str, callee_pairs: Dict[str, FrozenSet[Tuple[int, int]]]
) -> str:
    digest = hashlib.sha256()
    digest.update(f"assume|{FINGERPRINT_VERSION}|{unit_key}".encode("utf-8"))
    for callee in sorted(callee_pairs):
        pairs = ",".join(
            f"{i}:{j}" for i, j in sorted(callee_pairs[callee])
        )
        digest.update(f"|{callee}=[{pairs}]".encode("utf-8"))
    return digest.hexdigest()


def _local_pairs(
    local: ProgramDependenceGraph,
    formal_in: Dict[int, int],
    formal_out: Dict[int, int],
) -> FrozenSet[Tuple[int, int]]:
    """``formal_dependences`` over an explicit local graph (the summary
    module's version reads a whole SDG; assembly has the pieces)."""
    pairs: Set[Tuple[int, int]] = set()
    for j, f_out in formal_out.items():
        closure = local.backward_closure([f_out])
        for i, f_in in formal_in.items():
            if f_in in closure:
                pairs.add((i, j))
    return frozenset(pairs)


def _insert_summary_edges(local, info, site_pairs) -> int:
    """Add summary edges for every call site of *info*'s unit from the
    given per-callee pairs; returns the number of edges added (the
    ``add_edge`` dedupe makes re-insertion idempotent, and distinct
    ``(i, j)`` pairs map to distinct ``(actual-in, actual-out)`` node
    pairs per site, so the count matches the monolithic fixpoint's)."""
    added = 0
    for site in info.sites:
        pairs = site_pairs.get(site.callee)
        if not pairs:
            continue
        for i, j in pairs:
            ai = site.actual_in.get(i)
            ao = site.actual_out.get(j)
            if ai is None or ao is None:
                continue
            if local.has_edge(ai, ao, "summary", site.callee):
                continue
            local.add_edge(ai, ao, "summary", site.callee)
            added += 1
    return added


def _scc_order(graph: CallGraph) -> List[List[str]]:
    """SCCs of the call graph in callees-first (reverse topological)
    order, main's SCC last (nothing calls main).  Iterative Tarjan —
    generated call chains are shallow, but no recursion-limit risk."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in graph.units:
        if root in index:
            continue
        work: List[Tuple[str, Iterator[str]]] = [
            (root, iter(sorted(graph.callees.get(root, ()))))
        ]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append(
                        (child, iter(sorted(graph.callees.get(child, ()))))
                    )
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
    return sccs


def build_sdg_incremental(
    program: Program,
    main_analysis: ProgramAnalysis,
    cache: UnitCache,
    fuse_cond_goto: bool = True,
    chain_io: bool = True,
    dominator_algorithm: str = "iterative",
):
    """Assemble an :class:`~repro.sdg.builder.SDGAnalysis`, reusing
    cached unit analyses and stitched local graphs.

    Produces the same graph ``build_sdg`` + ``compute_summary_edges``
    would — same per-unit node ids, same summary-edge sets, same
    ``summary_edges`` count (the least fixpoint is unique; see the
    module docstring for why recursive SCCs are rebuilt from empty
    seeds) — with ``summary_iterations`` counting SCC evaluations
    instead of worklist pops.
    """
    from repro.sdg.builder import (
        ProcedureInfo,
        SDGAnalysis,
        _local_graph,
        _site_nodes,
    )

    with trace_span("sdg-build", incremental=True) as span:
        graph = build_call_graph(program)
        sigs = signatures(program, graph)
        digests = getattr(main_analysis, "_unit_digests", None)
        if digests is None:
            digests = unit_fingerprints(
                program,
                fuse_cond_goto=fuse_cond_goto,
                chain_io=chain_io,
                dominator_algorithm=dominator_algorithm,
                graph=graph,
            )

        procs: Dict[str, ProcedureInfo] = {}
        sites_of: Dict[str, List] = {unit: [] for unit in graph.units}
        offset = 0
        for unit in graph.units:
            with trace_span("sdg-unit", unit=unit):
                if unit == MAIN_UNIT:
                    analysis = main_analysis
                else:
                    record = cache.get_unit(digests[unit])
                    if record is not None:
                        cache.stats.record("units_reused")
                        proc = program.proc_named(unit)
                        analysis = _shell(
                            record.analysis,
                            Program(
                                body=proc.body,
                                source=program.source,
                                procs=program.procs,
                            ),
                        )
                    else:
                        cache.stats.record("units_built")
                        analysis = analyze_program(
                            program,
                            fuse_cond_goto=fuse_cond_goto,
                            chain_io=chain_io,
                            dominator_algorithm=dominator_algorithm,
                            unit=unit,
                        )
                        cache.put_unit(digests[unit], analysis)
                cfg = analysis.cfg
                info = ProcedureInfo(
                    name=unit,
                    analysis=analysis,
                    local=None,  # assigned below, per SCC
                    offset=offset,
                )
                for node_id in cfg.formal_ins:
                    info.formal_in[cfg.nodes[node_id].param_index] = node_id
                for node_id in cfg.formal_outs:
                    info.formal_out[cfg.nodes[node_id].param_index] = node_id
                info.sites = _site_nodes(analysis, unit)
                for site in info.sites:
                    sites_of[site.callee].append(site)
                procs[unit] = info
                offset += info.size
                budget_check_nodes(offset, "sdg-build")

        # Summary edges, callees-first over the SCC condensation.
        pairs: Dict[str, FrozenSet[Tuple[int, int]]] = {}
        total_summary = 0
        iterations = 0
        with trace_span("sdg-summary", incremental=True) as summary_span:
            for component in _scc_order(graph):
                iterations += 1
                budget_round("sdg-summary")
                budget_tick("sdg-summary")
                recursive = len(component) > 1 or (
                    component[0] in graph.recursive
                )
                if not recursive:
                    unit = component[0]
                    info = procs[unit]
                    callee_pairs = {
                        callee: pairs[callee]
                        for callee in graph.callees.get(unit, ())
                    }
                    assume_key = _pairs_assumption_key(
                        digests[unit], callee_pairs
                    )
                    stitched = cache.get_stitched(digests[unit], assume_key)
                    if stitched is None:
                        cache.stats.record("stitched_built")
                        local = _local_graph(info.analysis)
                        count = _insert_summary_edges(
                            local, info, callee_pairs
                        )
                        unit_pairs = (
                            frozenset()
                            if unit == MAIN_UNIT
                            else _local_pairs(
                                local, info.formal_in, info.formal_out
                            )
                        )
                        stitched = cache.put_stitched(
                            digests[unit],
                            assume_key,
                            StitchedUnit(
                                local=local,
                                pairs=unit_pairs,
                                summary_count=count,
                            ),
                        )
                    else:
                        cache.stats.record("stitched_reused")
                    info.local = stitched.local
                    pairs[unit] = stitched.pairs
                    total_summary += stitched.summary_count
                    continue

                # Recursive SCC: rebuild from empty seeds (stale pairs
                # must never seed the fixpoint — they can shrink).
                cache.stats.record("recursive_rebuilt", len(component))
                members = set(component)
                for unit in component:
                    info = procs[unit]
                    info.local = _local_graph(info.analysis)
                    external = {
                        callee: pairs[callee]
                        for callee in graph.callees.get(unit, ())
                        if callee not in members
                    }
                    total_summary += _insert_summary_edges(
                        info.local, info, external
                    )
                changed = True
                while changed:
                    changed = False
                    budget_round("sdg-summary")
                    budget_tick("sdg-summary")
                    for unit in component:
                        info = procs[unit]
                        unit_pairs = _local_pairs(
                            info.local, info.formal_in, info.formal_out
                        )
                        if unit_pairs == pairs.get(unit):
                            continue
                        pairs[unit] = unit_pairs
                        internal = {unit: unit_pairs}
                        for site in sites_of[unit]:
                            if site.caller not in members:
                                continue
                            total_summary += _insert_summary_edges(
                                procs[site.caller].local,
                                procs[site.caller],
                                internal,
                            )
                        changed = True
            summary_span.set(edges=total_summary, iterations=iterations)

        sdg = SDGAnalysis(
            program=program,
            graph=graph,
            signatures=sigs,
            procs=procs,
            sites_of=sites_of,
            summary_edges=total_summary if program.procs else 0,
            summary_iterations=iterations if program.procs else 0,
        )
        # Formal pairs per unit: the slice-result salvage compares these
        # across versions to decide whether a dirty unit's edit could
        # have moved any summary edge.
        sdg._unit_pairs = dict(pairs)
        span.set(
            units=len(procs),
            vertices=offset,
            summary_edges=sdg.summary_edges,
        )
        return sdg


# ---------------------------------------------------------------------------
# Slice-result salvage
# ---------------------------------------------------------------------------


def _slice_salvage_key(criterion) -> Tuple:
    return ("interprocedural", criterion.line, criterion.var, criterion.proc)


def _salvage_facts(analysis: ProgramAnalysis, sdg):
    """(cache, digests, pairs) when the analysis/SDG pair carries the
    incremental bookkeeping, else ``None`` — monolithic builds (knob
    off, direct ``build_sdg`` callers) never hit the salvage path."""
    if not incremental_enabled():
        return None
    cache = getattr(analysis, "_unit_cache", None)
    digests = getattr(analysis, "_unit_digests", None)
    pairs = getattr(sdg, "_unit_pairs", None)
    if cache is None or digests is None or pairs is None:
        return None
    return cache, digests, pairs


def salvage_sdg_slice(analysis: ProgramAnalysis, sdg, criterion):
    """Replay a previously recorded slice for *criterion* when the edit
    provably cannot have changed it (module docstring: the dirty units
    are outside the slice, kept their formal pairs, did not gain the
    criterion line, and the global summary count is unchanged).
    Returns the recorded ``SDGSliceResult`` or ``None``."""
    facts = _salvage_facts(analysis, sdg)
    if facts is None:
        return None
    cache, digests, pairs = facts
    record = cache.get_slice(_slice_salvage_key(criterion))
    if record is None:
        return None
    if record.digests.keys() != digests.keys():
        return None
    if record.summary_total != sdg.summary_edges:
        return None
    for unit, digest in digests.items():
        if record.digests[unit] == digest:
            continue
        if unit in record.slice_units:
            return None
        if record.pairs.get(unit) != pairs.get(unit):
            return None
        if criterion.proc is None and criterion.line in set(
            sdg.procs[unit].analysis.statement_lines()
        ):
            # The dirty unit now owns (or shares) the criterion line:
            # resolution could flip to it or turn ambiguous.
            return None
    cache.stats.record("slices_salvaged")
    return record.sdg_result


def record_sdg_slice(analysis: ProgramAnalysis, sdg, criterion, result) -> None:
    """Store a fully-computed slice for future salvage.  Only reached
    after the slicer returned normally — budget aborts and degraded
    results raise before this point and are never recorded."""
    facts = _salvage_facts(analysis, sdg)
    if facts is None:
        return
    cache, digests, pairs = facts
    cache.put_slice(
        _slice_salvage_key(criterion),
        SliceSalvageRecord(
            digests=dict(digests),
            slice_units=frozenset(result.per_proc),
            pairs=dict(pairs),
            summary_total=sdg.summary_edges,
            sdg_result=result,
        ),
    )
