"""Observability counters for the slicing service.

Everything here is stdlib-only and cheap enough to sit on the hot path:
per-(op, algorithm) request/error counts, a fixed-bucket latency
histogram, and per-phase histograms fed by traced requests.  A snapshot
is a plain JSON-ready dict, exposed at ``GET /stats``, rendered as
Prometheus text at ``GET /metrics.prom``, and printed by ``slang batch
--stats``.

Consistency contract (audited by ``tests/unit/test_service_stats.py``):
:meth:`ServiceStats.snapshot` holds the one internal lock across the
*entire* snapshot, and :meth:`ServiceStats.record` performs its
counter increment and histogram observation under one acquisition of
the same lock — so a snapshot taken while writers spin can never tear
(``requests[key]`` always equals ``latency[key].count``, and a
histogram's bucket counts always sum to its ``count``).  The
``/metrics.prom`` exposition is rendered from one such snapshot, which
is what makes it reconcile exactly with ``/stats``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional, Sequence

#: Upper bucket bounds in seconds (the last bucket is +inf).
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


class LatencyHistogram:
    """A fixed-boundary latency histogram (Prometheus-style, no deps).

    Not locked on its own — the owning :class:`ServiceStats` serialises
    access; standalone users in a single thread need no lock either.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(buckets))
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += 1
        self.sum += seconds
        if seconds > self.max:
            self.max = seconds

    def snapshot(self) -> Dict[str, Any]:
        buckets = {
            f"le_{bound:g}": count
            for bound, count in zip(self.bounds, self.counts)
        }
        buckets["le_inf"] = self.counts[-1]
        mean = self.sum / self.total if self.total else 0.0
        return {
            "count": self.total,
            "sum_seconds": round(self.sum, 6),
            "mean_seconds": round(mean, 6),
            "max_seconds": round(self.max, 6),
            "buckets": buckets,
        }


class ServiceStats:
    """Thread-safe request accounting for the engine and server."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.time()
        self._requests: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}
        self._latency: Dict[str, LatencyHistogram] = {}
        self._diagnostics: Dict[str, int] = {}
        self._events: Dict[str, int] = {}
        self._phases: Dict[str, LatencyHistogram] = {}

    @staticmethod
    def _key(op: str, algorithm: Optional[str]) -> str:
        return f"{op}:{algorithm}" if algorithm else op

    def record(
        self,
        op: str,
        algorithm: Optional[str],
        seconds: float,
        error: bool = False,
    ) -> None:
        key = self._key(op, algorithm)
        with self._lock:
            self._requests[key] = self._requests.get(key, 0) + 1
            if error:
                self._errors[key] = self._errors.get(key, 0) + 1
            histogram = self._latency.get(key)
            if histogram is None:
                histogram = self._latency[key] = LatencyHistogram()
            histogram.observe(seconds)

    def record_diagnostics(self, counts: Dict[str, int]) -> None:
        """Accumulate per-rule diagnostic counts from one ``check``
        (keyed by stable code, e.g. ``SL101``); surfaced under the
        ``diagnostics`` key of :meth:`snapshot`."""
        with self._lock:
            for code, count in counts.items():
                self._diagnostics[code] = (
                    self._diagnostics.get(code, 0) + count
                )

    def record_phase(self, phase: str, seconds: float) -> None:
        """Observe one pipeline-phase duration (``parse``,
        ``postdominance``, ``fig7-traversal``, …), harvested from a
        traced request's span tree; surfaced under the ``phases`` key of
        :meth:`snapshot` and as ``slang_phase_duration_seconds`` in the
        Prometheus exposition."""
        with self._lock:
            histogram = self._phases.get(phase)
            if histogram is None:
                histogram = self._phases[phase] = LatencyHistogram()
            histogram.observe(seconds)

    def record_phases(self, totals: Dict[str, float]) -> None:
        """Observe a whole request's phase totals under one lock
        acquisition (one observation per phase)."""
        with self._lock:
            for phase, seconds in totals.items():
                histogram = self._phases.get(phase)
                if histogram is None:
                    histogram = self._phases[phase] = LatencyHistogram()
                histogram.observe(seconds)

    def record_event(self, name: str, count: int = 1) -> None:
        """Count one resilience outcome (``shed``, ``budget-exceeded``,
        ``degraded``, ``retry``, ``retry:recovered``, …) — the counters
        the fault-injection suite reconciles against responses."""
        with self._lock:
            self._events[name] = self._events.get(name, 0) + count

    def event_count(self, name: str) -> int:
        with self._lock:
            return self._events.get(name, 0)

    def time(self, op: str, algorithm: Optional[str] = None):
        """Context manager that records one request's latency."""
        return _Timer(self, op, algorithm)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "uptime_seconds": round(time.time() - self._started, 3),
                "requests": dict(sorted(self._requests.items())),
                "errors": dict(sorted(self._errors.items())),
                "events": dict(sorted(self._events.items())),
                "diagnostics": dict(sorted(self._diagnostics.items())),
                "latency": {
                    key: histogram.snapshot()
                    for key, histogram in sorted(self._latency.items())
                },
                "phases": {
                    phase: histogram.snapshot()
                    for phase, histogram in sorted(self._phases.items())
                },
            }


def _merge_histogram_snapshots(
    into: Dict[str, Any], snapshot: Dict[str, Any]
) -> None:
    """Fold one :meth:`LatencyHistogram.snapshot` dict into *into*.

    Counts, sums, and per-bucket counts add; ``max_seconds`` maxes; the
    mean is recomputed — so the merged histogram is exactly what one
    histogram observing every sample would have produced (bucket
    boundaries are identical across workers by construction).
    """
    into["count"] = into.get("count", 0) + snapshot.get("count", 0)
    into["sum_seconds"] = round(
        into.get("sum_seconds", 0.0) + snapshot.get("sum_seconds", 0.0), 6
    )
    into["max_seconds"] = round(
        max(into.get("max_seconds", 0.0), snapshot.get("max_seconds", 0.0)),
        6,
    )
    buckets = into.setdefault("buckets", {})
    for bound, count in (snapshot.get("buckets") or {}).items():
        buckets[bound] = buckets.get(bound, 0) + count
    count = into["count"]
    into["mean_seconds"] = (
        round(into["sum_seconds"] / count, 6) if count else 0.0
    )


def _sum_numeric(
    snapshots: Sequence[Dict[str, Any]], skip: Sequence[str] = ()
) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            if key in skip or isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                out[key] = out.get(key, 0) + value
    return out


def _with_hit_rate(stats: Dict[str, Any]) -> Dict[str, Any]:
    total = stats.get("hits", 0) + stats.get("misses", 0)
    stats["hit_rate"] = (
        round(stats.get("hits", 0) / total, 4) if total else 0.0
    )
    return stats


def merge_stats_payloads(
    payloads: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Aggregate per-worker ``/stats`` payloads into one cluster view.

    Counter maps (``requests``/``errors``/``events``/``diagnostics``)
    and histogram snapshots add across workers; cache/slice-cache/
    admission counters add with hit rates recomputed from the merged
    totals.  ``uptime_seconds`` is the *max* (the oldest worker).  The
    durable store is shared by every worker, so its per-process byte
    gauges take the max while its per-process activity counters
    (hits/misses/puts/…) add.
    """
    merged: Dict[str, Any] = {
        "uptime_seconds": 0.0,
        "requests": {},
        "errors": {},
        "events": {},
        "diagnostics": {},
        "latency": {},
        "phases": {},
    }
    caches: list = []
    slice_caches: list = []
    admissions: list = []
    stores: list = []
    for payload in payloads:
        if not isinstance(payload, dict):
            continue
        merged["uptime_seconds"] = max(
            merged["uptime_seconds"], payload.get("uptime_seconds", 0.0)
        )
        for key in ("requests", "errors", "events", "diagnostics"):
            counters = merged[key]
            for name, count in (payload.get(key) or {}).items():
                counters[name] = counters.get(name, 0) + count
        for key in ("latency", "phases"):
            histograms = merged[key]
            for name, snapshot in (payload.get(key) or {}).items():
                _merge_histogram_snapshots(
                    histograms.setdefault(name, {}), snapshot
                )
        for collected, name in (
            (caches, "cache"),
            (slice_caches, "slice_cache"),
            (admissions, "admission"),
            (stores, "store"),
        ):
            tier = payload.get(name)
            if isinstance(tier, dict):
                collected.append(tier)
    for key in ("requests", "errors", "events", "diagnostics",
                "latency", "phases"):
        merged[key] = dict(sorted(merged[key].items()))
    if caches:
        merged["cache"] = _with_hit_rate(
            _sum_numeric(caches, skip=("hit_rate",))
        )
    if slice_caches:
        merged["slice_cache"] = _with_hit_rate(
            _sum_numeric(slice_caches, skip=("hit_rate",))
        )
    if admissions:
        admission = _sum_numeric(admissions, skip=("max_inflight",))
        limits = [tier.get("max_inflight") for tier in admissions]
        admission["max_inflight"] = (
            None if any(limit is None for limit in limits) else sum(limits)
        )
        merged["admission"] = admission
    if stores:
        store = _sum_numeric(
            stores, skip=("hit_rate", "bytes", "max_bytes")
        )
        store["root"] = stores[0].get("root")
        store["bytes"] = max(tier.get("bytes", 0) for tier in stores)
        store["max_bytes"] = stores[0].get("max_bytes")
        merged["store"] = _with_hit_rate(store)
    return merged


class _Timer:
    def __init__(
        self, stats: ServiceStats, op: str, algorithm: Optional[str]
    ) -> None:
        self._stats = stats
        self._op = op
        self._algorithm = algorithm

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        self._stats.record(
            self._op, self._algorithm, elapsed, error=exc_type is not None
        )
