"""The slicing service subsystem.

Turns the library into a long-running, concurrent slicing service:

* :mod:`repro.service.cache` — content-addressed, LRU-bounded cache of
  :class:`~repro.pdg.builder.ProgramAnalysis` artefacts keyed by source
  hash, so the criterion-independent analyses (CFG, postdominator tree,
  LST, control/data dependence, PDG) are built once per program and
  shared across every request that slices it.
* :mod:`repro.service.protocol` — the versioned JSON request/response
  schema shared by the HTTP server, ``slang batch``, and the CLI's
  ``--json`` mode.
* :mod:`repro.service.engine` — a worker-pool engine that fans batches
  of criteria out over cached analyses and routes every request through
  :mod:`repro.slicing.registry`.
* :mod:`repro.service.server` — a stdlib ``ThreadingHTTPServer`` front
  end (``slang serve``).
* :mod:`repro.service.stats` — per-algorithm request counters, bucketed
  latency histograms, and cache statistics (``GET /stats``).
* :mod:`repro.service.resilience` — deadlines/budgets, admission
  control, degradation policy, and retry backoff.
* :mod:`repro.service.faults` — deterministic fault injection for the
  resilience test suite.
* :mod:`repro.service.store` — the durable on-disk analysis store: a
  checksummed, atomically-written, LRU-bounded blob cache shared across
  worker processes and restarts.
* :mod:`repro.service.cluster` — supervised multi-process serving:
  content-hash sharding, crash detection and backoff restarts, a
  crash-loop circuit breaker, and graceful SIGTERM drain.
* :mod:`repro.service.client` — the retrying HTTP client
  (``slang batch --url``), honoring server-sent ``Retry-After`` as the
  backoff floor.

Exports are resolved lazily (PEP 562): the low-level analysis and
slicing layers import :mod:`repro.service.resilience` for cooperative
budget checks, and an eager ``from repro.service.engine import ...``
here would close an import cycle back through
:mod:`repro.slicing.registry`.
"""

from typing import TYPE_CHECKING

#: export name -> defining submodule.
_EXPORTS = {
    "AnalysisCache": "repro.service.cache",
    "analysis_key": "repro.service.cache",
    "SlicingEngine": "repro.service.engine",
    "PROTOCOL_VERSION": "repro.service.protocol",
    "SliceRequest": "repro.service.protocol",
    "CompareRequest": "repro.service.protocol",
    "GraphRequest": "repro.service.protocol",
    "MetricsRequest": "repro.service.protocol",
    "ProtocolError": "repro.service.protocol",
    "capabilities_payload": "repro.service.protocol",
    "error_payload": "repro.service.protocol",
    "request_from_dict": "repro.service.protocol",
    "slice_result_payload": "repro.service.protocol",
    "SlicingHTTPServer": "repro.service.server",
    "make_server": "repro.service.server",
    "LatencyHistogram": "repro.service.stats",
    "ServiceStats": "repro.service.stats",
    "Budget": "repro.service.resilience",
    "BudgetExceededError": "repro.service.resilience",
    "EngineLimits": "repro.service.resilience",
    "OverloadedError": "repro.service.resilience",
    "PayloadTooLargeError": "repro.service.resilience",
    "RetryPolicy": "repro.service.resilience",
    "FaultPlan": "repro.service.faults",
    "InjectedFaultError": "repro.service.faults",
    "DurableStore": "repro.service.store",
    "payload_store_key": "repro.service.store",
    "ClusterConfig": "repro.service.cluster",
    "ClusterSupervisor": "repro.service.cluster",
    "shard_for": "repro.service.cluster",
    "ServiceClient": "repro.service.client",
    "merge_stats_payloads": "repro.service.stats",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover — static analysers only
    from repro.service.cache import AnalysisCache, analysis_key
    from repro.service.engine import SlicingEngine
    from repro.service.faults import FaultPlan, InjectedFaultError
    from repro.service.protocol import (
        PROTOCOL_VERSION,
        CompareRequest,
        GraphRequest,
        MetricsRequest,
        ProtocolError,
        SliceRequest,
        capabilities_payload,
        error_payload,
        request_from_dict,
        slice_result_payload,
    )
    from repro.service.resilience import (
        Budget,
        BudgetExceededError,
        EngineLimits,
        OverloadedError,
        PayloadTooLargeError,
        RetryPolicy,
    )
    from repro.service.client import ServiceClient
    from repro.service.cluster import (
        ClusterConfig,
        ClusterSupervisor,
        shard_for,
    )
    from repro.service.server import SlicingHTTPServer, make_server
    from repro.service.stats import (
        LatencyHistogram,
        ServiceStats,
        merge_stats_payloads,
    )
    from repro.service.store import DurableStore, payload_store_key
