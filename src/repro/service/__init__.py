"""The slicing service subsystem.

Turns the library into a long-running, concurrent slicing service:

* :mod:`repro.service.cache` — content-addressed, LRU-bounded cache of
  :class:`~repro.pdg.builder.ProgramAnalysis` artefacts keyed by source
  hash, so the criterion-independent analyses (CFG, postdominator tree,
  LST, control/data dependence, PDG) are built once per program and
  shared across every request that slices it.
* :mod:`repro.service.protocol` — the versioned JSON request/response
  schema shared by the HTTP server, ``slang batch``, and the CLI's
  ``--json`` mode.
* :mod:`repro.service.engine` — a worker-pool engine that fans batches
  of criteria out over cached analyses and routes every request through
  :mod:`repro.slicing.registry`.
* :mod:`repro.service.server` — a stdlib ``ThreadingHTTPServer`` front
  end (``slang serve``).
* :mod:`repro.service.stats` — per-algorithm request counters, bucketed
  latency histograms, and cache statistics (``GET /stats``).
"""

from repro.service.cache import AnalysisCache, analysis_key
from repro.service.engine import SlicingEngine
from repro.service.protocol import (
    PROTOCOL_VERSION,
    CompareRequest,
    GraphRequest,
    MetricsRequest,
    ProtocolError,
    SliceRequest,
    capabilities_payload,
    error_payload,
    request_from_dict,
    slice_result_payload,
)
from repro.service.server import SlicingHTTPServer, make_server
from repro.service.stats import LatencyHistogram, ServiceStats

__all__ = [
    "AnalysisCache",
    "analysis_key",
    "SlicingEngine",
    "PROTOCOL_VERSION",
    "SliceRequest",
    "CompareRequest",
    "GraphRequest",
    "MetricsRequest",
    "ProtocolError",
    "capabilities_payload",
    "error_payload",
    "request_from_dict",
    "slice_result_payload",
    "SlicingHTTPServer",
    "make_server",
    "LatencyHistogram",
    "ServiceStats",
]
