"""Resilience primitives: deadlines, budgets, admission, and backoff.

The service survives pathological inputs by making every expensive loop
*cooperative*: a per-request :class:`Budget` (wall-clock deadline,
fixed-point iteration cap, CFG-node cap) is installed in a
``contextvars.ContextVar`` for the duration of one request, and the
long-running loops — the Fig. 7 traversal fixed point, Lyle's fixed
point, the dataflow worklist solver, and the SL20x slice verifier —
poll it via :func:`budget_tick` / :func:`budget_round`.  Exhaustion
raises a structured :class:`BudgetExceededError` instead of letting one
huge program stall a worker indefinitely.

Exhaustion of an *exact* algorithm need not mean failure: the paper's
own Fig. 13 conservative on-the-fly algorithm "may be larger but is
never wrong" on structured programs, so the engine can soundly downgrade
an over-budget Fig. 7 request to a Fig. 13 slice (tagged
``degraded: true``) instead of erroring — the policy knob is
:attr:`EngineLimits.degrade`.  Crucially, Fig. 13 performs *zero*
traversal rounds, so it still completes under the very iteration cap
that stopped Fig. 7.

The module deliberately imports nothing above :mod:`repro.lang.errors`
and :mod:`repro.obs.tracer` (which imports nothing from ``repro`` at
all) — the slicing and analysis layers import it, so it must sit at the
bottom of the dependency order even though it lives in the service
package (``repro/service/__init__.py`` re-exports lazily for the same
reason).  Budget exhaustion and load shedding announce themselves as
span events on the current tracer, so a traced request shows *where*
its budget ran out.

The other half of the survivability story is *admission*:
:class:`EngineLimits` bounds request size up front
(:class:`PayloadTooLargeError`), :class:`AdmissionGate` bounds in-flight
work and sheds the excess with :class:`OverloadedError` (HTTP 503 +
``Retry-After``) instead of queueing unboundedly, and
:class:`RetryPolicy` gives the batch runner deterministic jittered
exponential backoff for those transient errors.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

from repro.lang.errors import SlangError
from repro.obs.tracer import trace_event

#: Budget phases with fixed-point semantics count *rounds* against
#: ``max_traversals``; everything else only polls the deadline.
__all__ = [
    "Budget",
    "BudgetExceededError",
    "BudgetSpec",
    "OverloadedError",
    "PayloadTooLargeError",
    "EngineLimits",
    "AdmissionGate",
    "RetryPolicy",
    "current_budget",
    "use_budget",
    "budget_tick",
    "budget_round",
    "budget_check_nodes",
]


class BudgetExceededError(SlangError):
    """A cooperative budget ran out mid-analysis.

    Attributes
    ----------
    reason:
        ``"deadline"`` (wall clock), ``"traversals"`` (fixed-point
        iteration cap), or ``"nodes"`` (CFG-node cap).
    phase:
        Which loop noticed — e.g. ``"fig7-traversal"``, ``"dataflow"``,
        ``"slice-verify"`` — for observability, not dispatch.
    """

    def __init__(self, message: str, *, reason: str, phase: str) -> None:
        self.reason = reason
        self.phase = phase
        super().__init__(message)


class OverloadedError(SlangError):
    """The engine shed this request instead of queueing it unboundedly.

    Carries ``retry_after`` (seconds) so the HTTP front end can emit a
    ``Retry-After`` header and the batch runner can pace its retries.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        self.retry_after = retry_after
        super().__init__(message)


class PayloadTooLargeError(SlangError):
    """A request body or program exceeded the configured size limits."""


class Budget:
    """A mutable per-request budget, polled cooperatively.

    ``deadline_seconds`` is converted to an absolute monotonic deadline
    at construction; ``max_traversals`` caps fixed-point *rounds*
    (:meth:`tick_round`); ``max_nodes`` caps the CFG size an analysis
    may have (:meth:`check_nodes`).  ``None`` disables a dimension.

    One budget belongs to one request (one thread); it is not shared.
    """

    __slots__ = ("started", "deadline", "max_traversals", "max_nodes", "rounds")

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        max_traversals: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> None:
        self.started = time.monotonic()
        self.deadline = (
            self.started + deadline_seconds
            if deadline_seconds is not None
            else None
        )
        self.max_traversals = max_traversals
        self.max_nodes = max_nodes
        self.rounds = 0

    # -- queries -------------------------------------------------------

    def remaining_seconds(self) -> Optional[float]:
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def elapsed_seconds(self) -> float:
        return time.monotonic() - self.started

    # -- cooperative checks --------------------------------------------

    def tick(self, phase: str) -> None:
        """Poll the wall-clock deadline (cheap; call from hot loops)."""
        if self.deadline is not None and time.monotonic() > self.deadline:
            trace_event(
                "budget-exceeded", reason="deadline", phase=phase
            )
            raise BudgetExceededError(
                f"deadline exceeded after {self.elapsed_seconds():.3f}s "
                f"(in {phase})",
                reason="deadline",
                phase=phase,
            )

    def tick_round(self, phase: str) -> None:
        """Account one fixed-point round; enforce the iteration cap."""
        self.rounds += 1
        if (
            self.max_traversals is not None
            and self.rounds > self.max_traversals
        ):
            trace_event(
                "budget-exceeded",
                reason="traversals",
                phase=phase,
                rounds=self.rounds,
            )
            raise BudgetExceededError(
                f"fixed-point iteration cap of {self.max_traversals} "
                f"round(s) exceeded (in {phase})",
                reason="traversals",
                phase=phase,
            )
        self.tick(phase)

    def check_nodes(self, count: int, phase: str) -> None:
        """Enforce the CFG-node cap against an actual node count."""
        if self.max_nodes is not None and count > self.max_nodes:
            trace_event(
                "budget-exceeded",
                reason="nodes",
                phase=phase,
                nodes=count,
            )
            raise BudgetExceededError(
                f"program has {count} CFG nodes, over the "
                f"{self.max_nodes}-node cap (in {phase})",
                reason="nodes",
                phase=phase,
            )
        self.tick(phase)

    def exhaust_traversals(self) -> None:
        """Force the iteration cap shut (deterministic fault injection):
        the next :meth:`tick_round` — the first Fig. 7 round — raises,
        while zero-round algorithms (Fig. 13) still complete."""
        self.max_traversals = min(self.rounds, self.max_traversals or 0)


#: The per-request budget, visible to every analysis loop on the
#: request's thread.  Threads start with an empty context, so worker
#: threads never inherit another request's budget.
_BUDGET: ContextVar[Optional[Budget]] = ContextVar(
    "slang_budget", default=None
)


def current_budget() -> Optional[Budget]:
    """The budget of the request running on this thread, if any."""
    return _BUDGET.get()


@contextmanager
def use_budget(budget: Optional[Budget]) -> Iterator[Optional[Budget]]:
    """Install *budget* as the current budget for the dynamic extent."""
    token = _BUDGET.set(budget)
    try:
        yield budget
    finally:
        _BUDGET.reset(token)


def budget_tick(phase: str) -> None:
    """Deadline poll against the current budget (no-op when none).

    Hot loops that iterate many times should hoist
    :func:`current_budget` once and call ``budget.tick`` directly.
    """
    budget = _BUDGET.get()
    if budget is not None:
        budget.tick(phase)


def budget_round(phase: str) -> None:
    """Account one fixed-point round against the current budget."""
    budget = _BUDGET.get()
    if budget is not None:
        budget.tick_round(phase)


def budget_check_nodes(count: int, phase: str) -> None:
    """Enforce the CFG-node cap of the current budget."""
    budget = _BUDGET.get()
    if budget is not None:
        budget.check_nodes(count, phase)


@dataclass(frozen=True)
class BudgetSpec:
    """A client-supplied budget *request* (the optional ``budget`` field
    of the wire protocol).  Clients can only tighten the engine's
    limits, never widen them — :meth:`EngineLimits.budget_for` takes the
    minimum of each dimension."""

    deadline_ms: Optional[float] = None
    max_traversals: Optional[int] = None
    max_nodes: Optional[int] = None

    _FIELDS = ("deadline_ms", "max_traversals", "max_nodes")

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BudgetSpec":
        unknown = set(payload) - set(cls._FIELDS)
        if unknown:
            raise ValueError(
                f"unknown budget field(s) {sorted(unknown)}; "
                f"known: {list(cls._FIELDS)}"
            )
        values: Dict[str, Any] = {}
        for key in cls._FIELDS:
            value = payload.get(key)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                raise ValueError(f"budget field {key!r} must be a number")
            if value < 0:
                raise ValueError(f"budget field {key!r} must be >= 0")
            if key != "deadline_ms":
                value = int(value)
            values[key] = value
        return cls(**values)

    def to_dict(self) -> Dict[str, Any]:
        return {
            key: getattr(self, key)
            for key in self._FIELDS
            if getattr(self, key) is not None
        }


def _tightest(*values: Optional[float]) -> Optional[float]:
    present = [value for value in values if value is not None]
    return min(present) if present else None


@dataclass(frozen=True)
class EngineLimits:
    """Engine-wide resilience policy (admission + default budgets).

    Everything defaults to "unlimited" so an unconfigured engine
    behaves exactly as before this layer existed; ``degrade`` defaults
    to ``"conservative"`` but only matters once a budget can actually
    be exceeded.
    """

    deadline_seconds: Optional[float] = None
    max_traversals: Optional[int] = None
    max_cfg_nodes: Optional[int] = None
    max_source_bytes: Optional[int] = None
    max_inflight: Optional[int] = None
    degrade: str = "conservative"
    retry_after_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.degrade not in ("off", "conservative"):
            raise ValueError(
                f"unknown degrade policy {self.degrade!r}; "
                "use 'off' or 'conservative'"
            )

    def admit_source(self, source: str) -> None:
        """Reject oversized programs before any analysis runs."""
        if self.max_source_bytes is None:
            return
        size = len(source.encode("utf-8"))
        if size > self.max_source_bytes:
            raise PayloadTooLargeError(
                f"program of {size} bytes exceeds the "
                f"{self.max_source_bytes}-byte source limit"
            )

    def budget_for(self, spec: Optional[BudgetSpec] = None) -> Budget:
        """One fresh budget: engine defaults tightened by *spec*."""
        deadline = self.deadline_seconds
        traversals = self.max_traversals
        nodes = self.max_cfg_nodes
        if spec is not None:
            deadline = _tightest(
                deadline,
                spec.deadline_ms / 1000.0
                if spec.deadline_ms is not None
                else None,
            )
            traversals = _tightest(traversals, spec.max_traversals)
            nodes = _tightest(nodes, spec.max_nodes)
        return Budget(
            deadline_seconds=deadline,
            max_traversals=int(traversals) if traversals is not None else None,
            max_nodes=int(nodes) if nodes is not None else None,
        )


class AdmissionGate:
    """A bounded in-flight counter: the service's work queue.

    ``admit()`` either reserves a slot for the request's whole lifetime
    or raises :class:`OverloadedError` immediately — load is shed, not
    queued, so a burst can never build an unbounded backlog behind a
    slow request.  ``max_inflight=None`` admits everything (but still
    counts, for ``/readyz``).
    """

    def __init__(
        self,
        max_inflight: Optional[int] = None,
        retry_after: float = 1.0,
    ) -> None:
        self.max_inflight = max_inflight
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._inflight = 0
        self.shed = 0

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @contextmanager
    def admit(self) -> Iterator[None]:
        with self._lock:
            if (
                self.max_inflight is not None
                and self._inflight >= self.max_inflight
            ):
                self.shed += 1
                trace_event(
                    "shed",
                    inflight=self._inflight,
                    max_inflight=self.max_inflight,
                )
                raise OverloadedError(
                    f"engine is at its in-flight limit "
                    f"({self.max_inflight}); retry after "
                    f"{self.retry_after:g}s",
                    retry_after=self.retry_after,
                )
            self._inflight += 1
        try:
            yield
        finally:
            with self._lock:
                self._inflight -= 1

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "shed": self.shed,
            }


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for transient batch failures.

    ``delay(attempt, rng)`` for attempt 0, 1, 2, … is
    ``min(max_backoff, backoff * multiplier**attempt)`` scaled by a
    jitter factor drawn uniformly from ``[1 - jitter, 1]`` — seeding
    *rng* makes a whole retry schedule reproducible, which the fault
    injection tests rely on.

    A server that sheds load names its own pacing: the ``Retry-After``
    header (HTTP) / ``retry_after`` error field (envelope).  Passing it
    as *floor* makes the server's ask a **lower bound** on the client's
    delay — jitter may stretch the wait beyond the floor but can never
    dip under it, so a fleet of backing-off clients still spreads out
    instead of thundering back at exactly the named second.
    """

    max_retries: int = 0
    backoff_seconds: float = 0.05
    multiplier: float = 2.0
    max_backoff_seconds: float = 5.0
    jitter: float = 0.5
    seed: Optional[int] = None

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    def delay(
        self,
        attempt: int,
        rng: random.Random,
        floor: Optional[float] = None,
    ) -> float:
        base = min(
            self.max_backoff_seconds,
            self.backoff_seconds * (self.multiplier ** attempt),
        )
        if self.jitter > 0:
            base *= 1.0 - self.jitter * rng.random()
        if floor is not None:
            # The server-sent Retry-After is a floor, not a target: the
            # jittered exponential curve still applies above it.
            base = max(base, floor)
        return base
