"""The HTTP front end — stdlib ``ThreadingHTTPServer`` only.

Routes (all JSON, all protocol version :data:`PROTOCOL_VERSION`)::

    POST /slice      one SliceRequest        -> slice envelope
    POST /compare    one CompareRequest      -> compare envelope
    POST /graph      one GraphRequest        -> DOT text envelope
    POST /metrics    one MetricsRequest      -> cohesion envelope
    POST /check      one CheckRequest        -> lint-report envelope
    POST /batch      {"requests": [...]}     -> {"responses": [...]}
    GET  /stats      request/latency/phase/cache/admission counters
    GET  /metrics.prom  the same snapshot as Prometheus text exposition
                     (version 0.0.4); reconciles exactly with /stats
                     because both render one locked snapshot
    GET  /algorithms capability discovery (correct-general vs
                     structured-only vs baseline)
    GET  /healthz    liveness: {"ok": true} while the process serves
    GET  /readyz     readiness: 200 while the admission gate has
                     headroom, 503 (with queue gauges and Retry-After)
                     while shedding or draining

Graceful drain: once ``engine.begin_drain()`` runs (SIGTERM in a
cluster worker), ``/readyz`` turns 503 and every new POST is refused
with a retryable 503 ``overloaded`` envelope — but ``/healthz`` stays
200 and in-flight requests finish, so a load balancer stops routing
here without killing work already accepted.

Every response echoes an ``X-Request-Id`` header — the client's, when
one was sent, or a freshly generated hex id — so a traced request
(``trace: true`` in the body, span tree in the envelope) can be
correlated with proxy and client logs.

Each connection is handled on its own thread (``ThreadingHTTPServer``);
concurrency is safe because every worker shares one
:class:`SlicingEngine`, whose cache hands out immutable
:class:`ProgramAnalysis` artefacts (DESIGN.md §7).  Bodies are dumped
with ``sort_keys=True`` via :func:`repro.service.protocol.dump_json`,
so a server response is byte-identical to the CLI's ``--json`` output
for the same request.

Resilience at the HTTP edge: bodies must announce their size (no
``Content-Length`` → 411, over the cap → 413, both with the structured
``payload-too-large`` error), engine-shed requests map to 503 with a
``Retry-After`` header, and over-budget requests that could not be
degraded map to 504 — every error status still carries the structured
JSON error envelope.
"""

from __future__ import annotations

import json
import math
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.obs.prom import PROM_CONTENT_TYPE, render_prometheus
from repro.service.engine import SlicingEngine
from repro.service.protocol import (
    ProtocolError,
    capabilities_payload,
    dump_json,
    error_envelope,
)
from repro.service.resilience import OverloadedError, PayloadTooLargeError

MAX_BODY_BYTES = 8 * 1024 * 1024  # refuse absurd uploads

#: error code -> HTTP status (anything else that fails is a 400).
_STATUS_BY_CODE = {
    "overloaded": 503,
    "payload-too-large": 413,
    "budget-exceeded": 504,
    "fault-injected": 500,
    "internal-error": 500,
}


class SlicingHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` that owns the shared engine."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        engine: Optional[SlicingEngine] = None,
        verbose: bool = False,
        max_body_bytes: int = MAX_BODY_BYTES,
    ) -> None:
        super().__init__(address, SlicingRequestHandler)
        self.engine = engine if engine is not None else SlicingEngine()
        self.verbose = verbose
        self.max_body_bytes = max_body_bytes


class SlicingRequestHandler(BaseHTTPRequestHandler):
    server_version = "slang-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    @property
    def engine(self) -> SlicingEngine:
        return self.server.engine  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _request_id(self) -> str:
        """The id echoed on every response: the client's
        ``X-Request-Id`` when one was sent, else a generated one
        (stable for the duration of this request)."""
        cached = getattr(self, "_request_id_value", None)
        if cached is None:
            cached = self.headers.get("X-Request-Id") or uuid.uuid4().hex
            self._request_id_value = cached
        return cached

    def _send_body(
        self,
        body: bytes,
        content_type: str,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id", self._request_id())
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        payload: Dict[str, Any],
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._send_body(
            dump_json(payload).encode("utf-8"),
            "application/json; charset=utf-8",
            status=status,
            headers=headers,
        )

    def _send_envelope(self, envelope: Dict[str, Any]) -> None:
        """Send a response envelope with the status (and ``Retry-After``
        header) its error code implies."""
        if envelope.get("ok"):
            self._send_json(envelope)
            return
        error = envelope.get("error", {})
        status = _STATUS_BY_CODE.get(error.get("code"), 400)
        headers = None
        retry_after = error.get("retry_after")
        if retry_after is not None:
            headers = {"Retry-After": str(max(1, math.ceil(retry_after)))}
        self._send_json(envelope, status=status, headers=headers)

    def _read_body(self) -> Any:
        """Read and parse the JSON body, enforcing the announced-size
        contract: a body must carry ``Content-Length``, and the length
        must be under the server cap — we never read unboundedly."""
        header = self.headers.get("Content-Length")
        if header is None:
            raise PayloadTooLargeError(
                "request has no Content-Length header; bodies of "
                "unannounced size are refused"
            )
        try:
            length = int(header)
        except ValueError:
            raise ProtocolError(
                f"Content-Length {header!r} is not an integer"
            ) from None
        if length < 0:
            raise ProtocolError(f"Content-Length {length} is negative")
        max_bytes = getattr(self.server, "max_body_bytes", MAX_BODY_BYTES)
        if length > max_bytes:
            raise PayloadTooLargeError(
                f"request body of {length} bytes exceeds the "
                f"{max_bytes}-byte limit"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ProtocolError("request body is empty; expected JSON")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(
                f"request body is not valid JSON: {error}"
            ) from None

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        self._request_id_value = None  # new request on this connection
        path = self.path.split("?", 1)[0]
        if path == "/stats":
            self._send_json(self.engine.stats_payload())
        elif path == "/metrics.prom":
            self._send_body(
                render_prometheus(self.engine.stats_payload()).encode(
                    "utf-8"
                ),
                PROM_CONTENT_TYPE,
            )
        elif path == "/algorithms":
            self._send_json(capabilities_payload())
        elif path == "/healthz":
            self._send_json({"ok": True})
        elif path == "/readyz":
            payload = self.engine.readiness()
            if payload["ok"]:
                self._send_json(payload)
            else:
                retry_after = self.engine.gate.retry_after
                self._send_json(
                    payload,
                    status=503,
                    headers={
                        "Retry-After": str(max(1, math.ceil(retry_after)))
                    },
                )
        else:
            self._send_json(
                error_envelope(
                    "get", ProtocolError(f"no such endpoint {path!r}")
                ),
                status=404,
            )

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        self._request_id_value = None  # new request on this connection
        path = self.path.split("?", 1)[0]
        op = path.lstrip("/")
        if op not in ("slice", "compare", "graph", "metrics", "check", "batch"):
            self._send_json(
                error_envelope(
                    "post", ProtocolError(f"no such endpoint {path!r}")
                ),
                status=404,
            )
            return
        try:
            payload = self._read_body()
        except PayloadTooLargeError as error:
            status = 411 if self.headers.get("Content-Length") is None else 413
            self._send_json(error_envelope(op, error), status=status)
            return
        except ProtocolError as error:
            self._send_json(error_envelope(op, error), status=400)
            return
        if self.engine.draining:
            # The body is read (keep-alive framing stays intact) but a
            # draining worker takes no new work: the retryable envelope
            # sends the client (or the supervisor) elsewhere after
            # Retry-After seconds.
            self._send_envelope(
                error_envelope(
                    op,
                    OverloadedError(
                        "server is draining; retry elsewhere",
                        retry_after=self.engine.gate.retry_after,
                    ),
                )
            )
            return
        if op == "batch":
            self._handle_batch(payload)
            return
        if isinstance(payload, dict):
            payload.setdefault("op", op)
            if payload["op"] != op:
                self._send_json(
                    error_envelope(
                        op,
                        ProtocolError(
                            f"request op {payload['op']!r} does not match "
                            f"endpoint /{op}"
                        ),
                    ),
                    status=400,
                )
                return
        self._send_envelope(self.engine.handle_payload(payload))

    def _handle_batch(self, payload: Any) -> None:
        if not isinstance(payload, dict) or not isinstance(
            payload.get("requests"), list
        ):
            self._send_json(
                error_envelope(
                    "batch",
                    ProtocolError(
                        'batch body must be {"requests": [request, ...]}'
                    ),
                ),
                status=400,
            )
            return
        responses = self.engine.run_batch(payload["requests"])
        self._send_json({"ok": True, "responses": responses})


def make_server(
    host: str = "127.0.0.1",
    port: int = 8377,
    engine: Optional[SlicingEngine] = None,
    verbose: bool = False,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> SlicingHTTPServer:
    """Bind a server (``port=0`` picks a free port; serve with
    ``serve_forever()``, stop with ``shutdown()``)."""
    return SlicingHTTPServer(
        (host, port), engine, verbose=verbose, max_body_bytes=max_body_bytes
    )
