"""A retrying HTTP client for the slicing service — stdlib only.

:class:`ServiceClient` is the piece every remote surface shares:
``slang batch --url`` uses it to run a request file against a live
server, the chaos harness uses it to prove a batch survives worker
crashes, and the integration tests use it as the reference client.

Retry semantics mirror the engine's in-process batch runner, plus the
two failure modes only a network client can see:

* **Transport failures** (connection refused while a worker restarts,
  a connection reset by a worker that died mid-request) are transient
  by definition — the request never produced an answer, so re-issuing
  it is always safe for this service (every op is a pure function of
  its body).
* **Server-sent pacing**: a 503's ``Retry-After`` header (or the
  ``retry_after`` field of a structured error envelope) becomes the
  *floor* of the next backoff delay — the jittered exponential curve
  applies above it, never below it (see
  :class:`~repro.service.resilience.RetryPolicy`).

Determinism: with a seeded :class:`RetryPolicy`, request *i* of a batch
draws its jitter from ``Random(seed + i)``, so a whole batch's retry
schedule is reproducible regardless of thread interleaving.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.service.protocol import dump_json
from repro.service.resilience import RetryPolicy

#: Envelope synthesized for a request that never got an HTTP response.
CONNECTION_ERROR_CODE = "connection-failed"


def _connection_error_envelope(op: str, message: str) -> Dict[str, Any]:
    return {
        "ok": False,
        "op": op,
        "error": {
            "code": CONNECTION_ERROR_CODE,
            "message": message,
            "retryable": True,
        },
    }


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    if value is None:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None  # HTTP-date form: not worth parsing here
    return seconds if seconds >= 0 else None


class ServiceClient:
    """Requests against one base URL, with retry/backoff accounting.

    Parameters
    ----------
    base_url:
        ``http://host:port`` (a scheme and netloc; paths are appended).
    retry:
        A :class:`RetryPolicy`; ``max_retries=0`` (the default policy)
        makes every failure final on the first answer.
    timeout:
        Per-attempt socket timeout in seconds.
    """

    def __init__(
        self,
        base_url: str,
        retry: Optional[RetryPolicy] = None,
        timeout: float = 30.0,
    ) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self.host = parts.hostname
        self.port = parts.port or 80
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout = timeout
        self._lock = threading.Lock()
        self.retries = 0
        self.recovered = 0
        self.exhausted = 0
        self.connect_errors = 0

    # -- single round trips --------------------------------------------

    def _round_trip(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
    ) -> Tuple[int, Optional[float], Any]:
        """One HTTP exchange: ``(status, retry_after, parsed body)``.

        A fresh connection per attempt: after a worker restart the old
        socket is dead anyway, and per-request connections make "the
        server closed on me mid-read" a clean exception instead of a
        poisoned keep-alive stream.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {}
            if body is not None:
                headers["Content-Type"] = "application/json; charset=utf-8"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            retry_after = _parse_retry_after(
                response.getheader("Retry-After")
            )
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else None
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = None
            return response.status, retry_after, payload
        finally:
            conn.close()

    def get(self, path: str) -> Tuple[int, Any]:
        """One GET, no retries (observability endpoints)."""
        status, _, payload = self._round_trip("GET", path)
        return status, payload

    # -- the retrying POST path ----------------------------------------

    def post(
        self,
        payload: Dict[str, Any],
        rng: Optional[random.Random] = None,
    ) -> Dict[str, Any]:
        """POST one request payload to its op endpoint, retrying
        transient failures per the policy; always returns an envelope.
        """
        op = payload.get("op", "slice") if isinstance(payload, dict) else "slice"
        body = dump_json(payload).encode("utf-8")
        if rng is None:
            rng = self.retry.rng()
        attempts = 0
        while True:
            envelope, floor = self._attempt(op, body)
            transient = not envelope.get("ok") and bool(
                envelope.get("error", {}).get("retryable")
            )
            if not transient or attempts >= self.retry.max_retries:
                if attempts:
                    with self._lock:
                        if envelope.get("ok"):
                            self.recovered += 1
                        else:
                            self.exhausted += 1
                return envelope
            delay = self.retry.delay(attempts, rng, floor=floor)
            with self._lock:
                self.retries += 1
            time.sleep(delay)
            attempts += 1

    def _attempt(
        self, op: str, body: bytes
    ) -> Tuple[Dict[str, Any], Optional[float]]:
        """One POST attempt: ``(envelope, backoff floor)``."""
        try:
            status, retry_after, payload = self._round_trip(
                "POST", f"/{op}", body
            )
        except (OSError, http.client.HTTPException) as error:
            with self._lock:
                self.connect_errors += 1
            return (
                _connection_error_envelope(
                    op, f"request transport failed: {error!r}"
                ),
                None,
            )
        if not isinstance(payload, dict):
            # A dropped-mid-response body parses to nothing: treat like
            # a transport failure (the worker died while writing).
            with self._lock:
                self.connect_errors += 1
            return (
                _connection_error_envelope(
                    op, f"unparseable response (HTTP {status})"
                ),
                retry_after,
            )
        floor = retry_after
        if floor is None:
            error_retry = payload.get("error", {}).get("retry_after")
            if isinstance(error_retry, (int, float)) and not isinstance(
                error_retry, bool
            ):
                floor = float(error_retry)
        return payload, floor

    # -- batches --------------------------------------------------------

    def run_batch(
        self,
        payloads: Sequence[Dict[str, Any]],
        concurrency: int = 8,
    ) -> List[Dict[str, Any]]:
        """POST every payload (each to its own op endpoint, so a cluster
        supervisor shards them), preserving input order.

        Per-request seeded RNGs keep the retry schedule deterministic
        under any thread interleaving.
        """
        if not payloads:
            return []
        seed = self.retry.seed

        def one(index_payload: Tuple[int, Dict[str, Any]]) -> Dict[str, Any]:
            index, payload = index_payload
            rng = random.Random(None if seed is None else seed + index)
            return self.post(payload, rng=rng)

        with ThreadPoolExecutor(
            max_workers=max(1, min(concurrency, len(payloads)))
        ) as pool:
            return list(pool.map(one, enumerate(payloads)))

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "retries": self.retries,
                "recovered": self.recovered,
                "exhausted": self.exhausted,
                "connect_errors": self.connect_errors,
            }
