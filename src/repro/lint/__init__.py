"""Static analysis over SL programs: structured diagnostics, the
``slang check`` rule engine, and the slice well-formedness verifier.

Layered to stay import-cycle-free:

* :mod:`repro.lint.diagnostics` — the stdlib-only :class:`Diagnostic`
  model; safe for the language front end to import.
* :mod:`repro.lint.rules` — analysis-backed lint rules (CFG
  reachability, liveness, reaching definitions, lexical successors).
* :mod:`repro.lint.slice_check` — independently re-derives the paper's
  slice correctness conditions and audits any algorithm's output.

Only the diagnostic model is imported eagerly; the rule engine and the
verifier pull in the whole analysis stack, so they load lazily (PEP
562) — ``repro.lang.validate`` can import diagnostics while the
analysis packages are still initialising.
"""

from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    count_by_code,
    filter_diagnostics,
    severity_counts,
    sort_diagnostics,
)

_LAZY = {
    "LintContext": ("repro.lint.rules", "LintContext"),
    "RULES": ("repro.lint.rules", "RULES"),
    "Rule": ("repro.lint.rules", "Rule"),
    "run_lint": ("repro.lint.rules", "run_lint"),
    "SliceChecker": ("repro.lint.slice_check", "SliceChecker"),
    "conditions_for": ("repro.lint.slice_check", "conditions_for"),
    "verify_interprocedural": ("repro.lint.slice_check", "verify_interprocedural"),
    "verify_result": ("repro.lint.slice_check", "verify_result"),
    "verify_slice": ("repro.lint.slice_check", "verify_slice"),
}

__all__ = [
    "Diagnostic",
    "LintContext",
    "LintReport",
    "RULES",
    "Rule",
    "Severity",
    "SliceChecker",
    "conditions_for",
    "count_by_code",
    "filter_diagnostics",
    "run_lint",
    "severity_counts",
    "sort_diagnostics",
    "verify_interprocedural",
    "verify_result",
    "verify_slice",
]


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
