"""The slice well-formedness verifier (``SL2xx`` diagnostics).

Given a program, a criterion, and a candidate slice — from *any* of the
registry algorithms — this module independently re-derives the paper's
correctness conditions and reports every violation as a diagnostic:

* **SL201 criterion** — the resolved criterion node is in the slice.
* **SL202 data closure** — every definition reaching a use inside the
  slice is in the slice (re-derived from a fresh reaching-definitions
  fixed point, not the analysis' DDG).
* **SL203 control closure** — every branch node some slice member is
  control dependent on is in the slice (re-derived from the textbook
  branch-edge / postdominator-walk construction, not the analysis' CDG).
* **SL204 jump condition** — Agrawal's §3 test: every unconditional
  jump *outside* the slice must have its nearest postdominator in the
  slice equal to its nearest lexical successor in the slice; a jump for
  which they differ changes the guarding or ordering of sliced
  statements and therefore belongs in the slice.

Independence is the point — the checker must not trust the machinery it
audits.  It rebuilds the postdominator tree with the *other* dominator
algorithm (Lengauer–Tarjan instead of the default iterative solver),
rebuilds the lexical successor tree syntactically from the AST
(:func:`build_lst_syntactic`) instead of using the builder-recorded one,
and resolves dependence edges from a fresh dataflow fixed point.

Which conditions apply depends on the algorithm (:func:`conditions_for`):
the jump condition is the *thesis* of the paper, so the
conventional/Weiser-family baselines are expected to violate it — they
are checked for closure only — while the Agrawal algorithms and the
structured-only Fig. 12/13 algorithms must satisfy all four.  Lyle's
and Ball–Horwitz's constructions establish correctness by other means
(path coverage; augmented-PDG closure) and legitimately omit jumps the
npd/nls test flags — the test is sufficient, not necessary — so they
too are audited for closure only.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.bitset import node_universe
from repro.analysis.lexical import build_lst_syntactic
from repro.analysis.postdominance import build_postdominator_tree
from repro.analysis.reaching_defs import compute_reaching_definitions
from repro.cfg.graph import ControlFlowGraph
from repro.lint.diagnostics import Diagnostic, Severity, sort_diagnostics
from repro.obs.tracer import trace_span
from repro.pdg.builder import ProgramAnalysis
from repro.service.resilience import budget_tick
from repro.slicing.common import SliceResult

#: Every condition the checker knows, in report order.
ALL_CONDITIONS: Tuple[str, ...] = ("criterion", "data", "control", "jump")

#: Conditions that hold for any dependence-closure slicer, correct or
#: not — the baselines are audited against these only.
CLOSURE_CONDITIONS: Tuple[str, ...] = ("criterion", "data", "control")

_CODES = {
    "criterion": ("SL201", "criterion-dropped"),
    "data": ("SL202", "data-closure-violation"),
    "control": ("SL203", "control-closure-violation"),
    "jump": ("SL204", "jump-condition-violation"),
}

#: Interprocedural call-site consistency (DESIGN.md §12): parameter
#: nodes, their call, and the matching formal nodes must be retained
#: together across units.
SL205 = ("SL205", "call-site-inconsistency")


#: Algorithms whose correctness argument *is* Agrawal's fixed point —
#: the Fig. 7 iteration terminates exactly when no out-of-slice jump
#: has npd-in-slice ≠ nls-in-slice, so their output must pass the jump
#: test by construction.  The Fig. 12/13 structured algorithms run only
#: on structured programs, where every jump's target is a lexical
#: successor and the conventional closure already satisfies the test.
_FULL_AUDIT = frozenset(
    {"agrawal", "agrawal-lst", "structured", "conservative",
     "interprocedural"}
)


def conditions_for(algorithm: str) -> Tuple[str, ...]:
    """The condition profile an algorithm's output is audited against.

    The Agrawal and structured-only algorithms must satisfy every
    condition including the jump test — it is the invariant their
    constructions terminate on.  Everything else is audited for
    closure only:

    * ``baseline`` algorithms exist to demonstrate the jump test
      failing (the paper's motivating deficiency);
    * ``lyle`` and ``ball-horwitz`` are semantically correct by other
      arguments (CFG-path coverage; augmented-PDG closure) and may
      legitimately omit a jump that the npd/nls test flags — the test
      is a sufficient condition for slice correctness, not a necessary
      one.  The empirical sweep in the test suite pins concrete
      witnesses of both.

    Unregistered algorithm names (e.g. ad-hoc node sets) also get the
    closure profile: without a correctness contract, only the
    dependence-closure conditions are uncontroversial.
    """
    if algorithm in _FULL_AUDIT:
        return ALL_CONDITIONS
    return CLOSURE_CONDITIONS


class SliceChecker:
    """Re-derived dependence and tree structures for one program.

    Build once per program, then :meth:`verify` any number of slices
    against it (the property-test sweep verifies ten algorithms per
    program on one checker).
    """

    def __init__(self, analysis: ProgramAnalysis) -> None:
        self.analysis = analysis
        cfg = analysis.cfg
        self.cfg = cfg
        # Deliberately different construction paths from ProgramAnalysis:
        # Lengauer–Tarjan (not the iterative solver) for postdominators,
        # and the purely syntax-directed LST rebuild.
        self.pdt = build_postdominator_tree(cfg, algorithm="lengauer-tarjan")
        self.lst = build_lst_syntactic(analysis.program, cfg)
        self._data_parents = self._derive_data_parents(cfg)
        self._control_parents = self._derive_control_parents(cfg)
        # Mask tables for the closure checks: one AND per slice member
        # instead of a per-member set difference.  Pure representation —
        # the parents they encode come from the checker's own
        # derivations above, so auditor independence is intact.
        self._universe = node_universe(sorted(cfg.nodes))
        self._boundary_mask = self._universe.mask_of(
            (cfg.entry_id, cfg.exit_id)
        )
        self._data_mask = {
            member: self._universe.mask_of(parents)
            for member, parents in self._data_parents.items()
        }
        self._control_mask = {
            member: self._universe.mask_of(parents)
            for member, parents in self._control_parents.items()
        }

    # -- independent dependence derivations ----------------------------

    @staticmethod
    def _derive_data_parents(cfg: ControlFlowGraph) -> Dict[int, Set[int]]:
        """node → defining nodes it is data dependent on (def-use chains
        from a fresh reaching-definitions fixed point).

        Pinned to the set-based solver: the verifier audits slices the
        production path computes with the bitset kernels, so its own
        derivation must not share that code path (a kernel bug would
        otherwise corrupt auditor and audited identically).
        """
        reaching = compute_reaching_definitions(cfg, engine="sets")
        parents: Dict[int, Set[int]] = {}
        for node in cfg.sorted_nodes():
            wanted = node.uses
            if not wanted:
                continue
            parents[node.id] = {
                definition.node
                for definition in reaching.in_[node.id]
                if definition.var in wanted
            }
        return parents

    def _derive_control_parents(
        self, cfg: ControlFlowGraph
    ) -> Dict[int, Set[int]]:
        """node → branch nodes it is control dependent on.

        Textbook construction (Ferrante–Ottenstein–Warren): for every
        edge ``u → v`` leaving a node with ≥ 2 successors, walk ``v``
        up the postdominator tree to (but excluding) ``ipdom(u)``; every
        node on the walk is control dependent on ``u``.
        """
        parents: Dict[int, Set[int]] = {}
        for u in sorted(cfg.nodes):
            budget_tick("verifier-control-parents")
            successors = cfg.succ_ids(u)
            if len(successors) < 2:
                continue
            stop = self.pdt.parent_of(u)
            for v in successors:
                current: Optional[int] = v
                while current is not None and current != stop:
                    parents.setdefault(current, set()).add(u)
                    current = self.pdt.parent_of(current)
        return parents

    # -- the nearest-in-slice primitives (inline, not slicing.common) --

    def _nearest_in(self, tree, node_id: int, members: Set[int]) -> int:
        """Nearest proper *tree* ancestor of *node_id* in *members*; EXIT
        (the root of both trees) always counts as a member."""
        current = tree.parent_of(node_id)
        while current is not None:
            if current in members or current == self.cfg.exit_id:
                return current
            current = tree.parent_of(current)
        return self.cfg.exit_id

    # -- verification ---------------------------------------------------

    def verify(
        self,
        nodes: Iterable[int],
        criterion_node: Optional[int] = None,
        conditions: Iterable[str] = ALL_CONDITIONS,
    ) -> List[Diagnostic]:
        """Audit one slice; return violations (empty = well-formed)."""
        cfg = self.cfg
        slice_nodes = set(nodes)
        boundary = {cfg.entry_id, cfg.exit_id}
        out: List[Diagnostic] = []
        wanted = set(conditions)
        unknown = wanted - set(ALL_CONDITIONS)
        if unknown:
            raise ValueError(
                f"unknown slice conditions {sorted(unknown)}; "
                f"known: {list(ALL_CONDITIONS)}"
            )

        if "criterion" in wanted and criterion_node is not None:
            if criterion_node not in slice_nodes:
                out.append(
                    self._violation(
                        "criterion",
                        criterion_node,
                        f"criterion node {criterion_node} "
                        f"({cfg.nodes[criterion_node].text!r}) is not in "
                        "the slice",
                    )
                )

        universe = self._universe
        members_mask = universe.mask_of(
            member for member in slice_nodes if member in universe
        )
        outside_mask = ~(members_mask | self._boundary_mask)

        if "data" in wanted:
            for member in sorted(slice_nodes - boundary):
                budget_tick("verifier-data")
                missing = self._data_mask.get(member, 0) & outside_mask
                if not missing:
                    continue
                for parent in sorted(universe.decode(missing)):
                    out.append(
                        self._violation(
                            "data",
                            member,
                            f"node {member} ({cfg.nodes[member].text!r}) "
                            f"uses a value defined at node {parent} "
                            f"({cfg.nodes[parent].text!r}, line "
                            f"{cfg.nodes[parent].line}), which is not in "
                            "the slice",
                        )
                    )

        if "control" in wanted:
            for member in sorted(slice_nodes - boundary):
                missing = self._control_mask.get(member, 0) & outside_mask
                if not missing:
                    continue
                for parent in sorted(universe.decode(missing)):
                    out.append(
                        self._violation(
                            "control",
                            member,
                            f"node {member} ({cfg.nodes[member].text!r}) "
                            f"is control dependent on node {parent} "
                            f"({cfg.nodes[parent].text!r}, line "
                            f"{cfg.nodes[parent].line}), which is not in "
                            "the slice",
                        )
                    )

        if "jump" in wanted:
            for node in cfg.jump_nodes():
                budget_tick("verifier-jump")
                if node.id in slice_nodes:
                    continue
                npd = self._nearest_in(self.pdt, node.id, slice_nodes)
                nls = self._nearest_in(self.lst, node.id, slice_nodes)
                if npd != nls:
                    out.append(
                        self._violation(
                            "jump",
                            node.id,
                            f"jump {node.id} ({node.text!r}) is outside "
                            "the slice but its nearest postdominator in "
                            f"the slice ({npd}) differs from its nearest "
                            f"lexical successor in the slice ({nls}); "
                            "omitting it changes how sliced statements "
                            "are guarded or ordered (paper §3)",
                        )
                    )

        return list(sort_diagnostics(out))

    def _violation(self, condition: str, node_id: int, message: str) -> Diagnostic:
        code, rule = _CODES[condition]
        return Diagnostic(
            code=code,
            severity=Severity.ERROR,
            line=self.cfg.nodes[node_id].line,
            message=message,
            rule=rule,
        )


def verify_slice(
    analysis: ProgramAnalysis,
    nodes: Iterable[int],
    criterion_node: Optional[int] = None,
    conditions: Iterable[str] = ALL_CONDITIONS,
    checker: Optional[SliceChecker] = None,
) -> List[Diagnostic]:
    """Audit an arbitrary node set as a slice of *analysis*' program."""
    with trace_span("sl20x-verify") as span:
        checker = checker if checker is not None else SliceChecker(analysis)
        diagnostics = checker.verify(
            nodes, criterion_node=criterion_node, conditions=conditions
        )
        span.set(diagnostics=len(diagnostics))
    return diagnostics


def _sl205(node_line: int, message: str) -> Diagnostic:
    code, rule = SL205
    return Diagnostic(
        code=code, severity=Severity.ERROR, line=node_line,
        message=message, rule=rule,
    )


def verify_interprocedural(sdg_result) -> List[Diagnostic]:
    """Audit an interprocedural slice (an :class:`SDGSliceResult`).

    Two layers, both independent of the slicer's own machinery:

    * every unit's retained set is audited with the full per-unit
      SL201–SL204 profile against that unit's own CFG and rebuilt
      trees (the criterion condition applies only in the unit the
      criterion resolved into);
    * SL205 cross-unit call-site consistency — an actual-in or
      actual-out without its call node, an actual-out whose matching
      callee formal-out is missing, a retained call whose callee
      retains nothing, or a retained procedure no retained call ever
      invokes, all make the slice unextractable or change its meaning.
    """
    with trace_span("sl20x-verify-sdg") as span:
        sdg = sdg_result.sdg
        resolved = sdg_result.resolved
        out: List[Diagnostic] = []

        for unit, info in sdg.procs.items():
            members = sdg_result.per_proc.get(unit)
            if not members:
                continue
            checker = SliceChecker(info.analysis)
            criterion_node = (
                resolved.node_id if unit == resolved.unit else None
            )
            out.extend(
                checker.verify(
                    members,
                    criterion_node=criterion_node,
                    conditions=ALL_CONDITIONS,
                )
            )

        per_proc = sdg_result.per_proc
        for unit, info in sdg.procs.items():
            members = per_proc.get(unit, frozenset())
            cfg = info.analysis.cfg
            for site in info.sites:
                callee_members = per_proc.get(site.callee, frozenset())
                callee_info = sdg.procs[site.callee]
                call_line = cfg.nodes[site.call_id].line
                for index, ai in site.actual_in.items():
                    if ai in members and site.call_id not in members:
                        out.append(_sl205(
                            call_line,
                            f"actual-in {index} of the call to "
                            f"{site.callee!r} at line {call_line} is in "
                            "the slice but the call itself is not",
                        ))
                for index, ao in site.actual_out.items():
                    if ao not in members:
                        continue
                    if site.call_id not in members:
                        out.append(_sl205(
                            call_line,
                            f"actual-out {index} of the call to "
                            f"{site.callee!r} at line {call_line} is in "
                            "the slice but the call itself is not",
                        ))
                    f_out = callee_info.formal_out.get(index)
                    if f_out is None or f_out not in callee_members:
                        out.append(_sl205(
                            call_line,
                            f"actual-out {index} of the call to "
                            f"{site.callee!r} at line {call_line} is in "
                            "the slice but the callee's matching "
                            "formal-out is not — the copied-out value "
                            "would never be computed",
                        ))
                if site.call_id in members and not callee_members:
                    out.append(_sl205(
                        call_line,
                        f"the call to {site.callee!r} at line "
                        f"{call_line} is in the slice but the callee "
                        "retains no vertex at all",
                    ))

        from repro.lang.ast_nodes import MAIN_UNIT

        for unit in sdg.procs:
            if unit == MAIN_UNIT or not per_proc.get(unit):
                continue
            invoked = any(
                site.call_id in per_proc.get(site.caller, frozenset())
                for site in sdg.sites_of.get(unit, [])
            )
            if not invoked:
                out.append(_sl205(
                    0,
                    f"procedure {unit!r} retains vertices but no "
                    "retained call site ever invokes it",
                ))

        span.set(diagnostics=len(out))
        return list(sort_diagnostics(out))


def verify_result(
    result: SliceResult,
    conditions: Optional[Iterable[str]] = None,
    checker: Optional[SliceChecker] = None,
) -> List[Diagnostic]:
    """Audit a :class:`SliceResult` against the condition profile of the
    algorithm that produced it (see :func:`conditions_for`)."""
    if conditions is None:
        conditions = conditions_for(result.algorithm)
    return verify_slice(
        result.analysis,
        result.nodes,
        criterion_node=result.resolved.node_id,
        conditions=conditions,
        checker=checker,
    )
