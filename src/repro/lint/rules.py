"""Analysis-backed lint rules — the ``slang check`` engine.

Every rule is a pure function over a :class:`LintContext` (one program's
CFG plus lazily computed dataflow facts) returning diagnostics.  The
rules reuse the reproduction's own analyses — the same CFG reachability,
liveness, reaching definitions and lexical-successor machinery the
slicers run on — so a finding here is grounded in exactly the facts a
slice would be computed from:

====== ===================== ==========================================
code   rule                  backing analysis
====== ===================== ==========================================
SL101  unreachable-code      CFG reachability from ENTRY
SL102  dead-store            live variables (backward dataflow)
SL103  maybe-uninitialized   reaching definitions from ENTRY
SL104  unused-label          label table vs goto targets
SL105  unstructured-jump     lexical successor tree (paper §4)
SL106  constant-condition    constant folding over predicate exprs
SL107  no-reachable-exit     reverse reachability from EXIT
SL108  never-read-variable   def/use sets
====== ===================== ==========================================

SL is a single-scope language, so the "shadowed variable" half of the
classic shadowed/never-read pair cannot occur; SL108 covers the
meaningful half.

:func:`run_lint` is the single entry point every surface uses (CLI,
``POST /check``, the property-test oracle): parse → front-end
validation (SL0xx, from :mod:`repro.lang.validate`) → analysis rules
(skipped when validation failed, since no CFG exists) → select/ignore
filtering → a sorted :class:`LintReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Union

from repro.analysis.lexical import (
    LexicalSuccessorTree,
    build_lst,
    unstructured_jump_ids,
)
from repro.analysis.bitset import definite_assignment, reverse_reachable
from repro.analysis.dataflow import ENGINE_BITSET, get_dataflow_engine
from repro.analysis.liveness import compute_liveness
from repro.analysis.reaching_defs import compute_reaching_definitions
from repro.cfg.builder import INPUT_CURSOR, build_cfg
from repro.cfg.graph import ControlFlowGraph, NodeKind
from repro.lang.ast_nodes import (
    Binary,
    DoWhile,
    Expr,
    For,
    Goto,
    If,
    Num,
    Program,
    Switch,
    Unary,
    While,
)
from repro.lang.errors import LexError, ParseError
from repro.lang.parser import parse_program
from repro.lang.validate import CODE_SYNTAX_ERROR, check_program_diagnostics
from repro.obs.tracer import trace_span
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    filter_diagnostics,
    sort_diagnostics,
)


class LintContext:
    """One program plus the lazily built facts the rules consult.

    Deliberately *not* a full :class:`~repro.pdg.builder.ProgramAnalysis`:
    postdominators are undefined on programs where some node cannot reach
    EXIT (``analyze_program`` raises), but such programs are exactly what
    SL107 must be able to report on.  Everything here — CFG, dataflow,
    LST — is total.
    """

    def __init__(self, program: Program, source: Optional[str] = None) -> None:
        self.program = program
        self.source = source
        self.cfg: ControlFlowGraph = build_cfg(program)
        self._liveness = None
        self._reaching = None
        self._lst: Optional[LexicalSuccessorTree] = None
        self._reachable: Optional[FrozenSet[int]] = None
        self._reaches_exit: Optional[FrozenSet[int]] = None
        self._definitely_assigned: Optional[Dict[int, FrozenSet[str]]] = None

    @property
    def liveness(self):
        if self._liveness is None:
            self._liveness = compute_liveness(self.cfg)
        return self._liveness

    @property
    def reaching(self):
        if self._reaching is None:
            self._reaching = compute_reaching_definitions(self.cfg)
        return self._reaching

    @property
    def lst(self) -> LexicalSuccessorTree:
        if self._lst is None:
            self._lst = build_lst(self.cfg)
        return self._lst

    @property
    def reachable(self) -> FrozenSet[int]:
        """Node ids reachable from ENTRY."""
        if self._reachable is None:
            self._reachable = self.cfg.reachable_from(self.cfg.entry_id)
        return self._reachable

    @property
    def reaches_exit(self) -> FrozenSet[int]:
        """Node ids from which EXIT is reachable (reverse search).

        Follows the process-wide dataflow engine knob: mask propagation
        on the bitset engine, the reverse DFS reference otherwise.
        """
        if self._reaches_exit is None:
            if get_dataflow_engine() == ENGINE_BITSET:
                self._reaches_exit = reverse_reachable(
                    self.cfg, self.cfg.exit_id
                )
            else:
                seen = {self.cfg.exit_id}
                stack = [self.cfg.exit_id]
                while stack:
                    current = stack.pop()
                    for pred in self.cfg.pred_ids(current):
                        if pred not in seen:
                            seen.add(pred)
                            stack.append(pred)
                self._reaches_exit = frozenset(seen)
        return self._reaches_exit

    @property
    def definitely_assigned(self) -> Dict[int, FrozenSet[str]]:
        """node id → variables assigned on every ENTRY path (SL103's
        must dataflow), computed by the engine the knob selects."""
        if self._definitely_assigned is None:
            if get_dataflow_engine() == ENGINE_BITSET:
                self._definitely_assigned = definite_assignment(
                    self.cfg, self.reachable
                )
            else:
                self._definitely_assigned = _definite_assignment_sets(
                    self.cfg, self.reachable
                )
        return self._definitely_assigned


def _definite_assignment_sets(
    cfg: ControlFlowGraph, reachable: FrozenSet[int]
) -> Dict[int, FrozenSet[str]]:
    """Set-based reference for SL103's definite assignment (must
    dataflow: IN is the intersection over reachable predecessors)."""
    all_vars = set()
    for node in cfg.statement_nodes():
        all_vars |= node.defs
    assigned_in: Dict[int, FrozenSet[str]] = {}
    assigned_out: Dict[int, FrozenSet[str]] = {
        node_id: frozenset(all_vars) for node_id in reachable
    }
    assigned_out[cfg.entry_id] = frozenset()
    worklist = [n for n in sorted(reachable) if n != cfg.entry_id]
    while worklist:
        node_id = worklist.pop(0)
        preds = [p for p in cfg.pred_ids(node_id) if p in reachable]
        in_set: FrozenSet[str] = (
            frozenset.intersection(*(assigned_out[p] for p in preds))
            if preds
            else frozenset()
        )
        node = cfg.nodes[node_id]
        out_set = in_set | node.defs
        if (
            assigned_in.get(node_id) == in_set
            and assigned_out[node_id] == out_set
        ):
            continue
        assigned_in[node_id] = in_set
        assigned_out[node_id] = out_set
        for succ in cfg.succ_ids(node_id):
            if succ in reachable and succ not in worklist:
                worklist.append(succ)
    return assigned_in


@dataclass(frozen=True)
class Rule:
    """A registered lint rule: stable code, slug, default severity, and
    the checking function."""

    code: str
    name: str
    severity: Severity
    summary: str
    check: Callable[[LintContext], List[Diagnostic]] = field(compare=False)


#: code → :class:`Rule`, populated by the :func:`rule` decorator below.
RULES: Dict[str, Rule] = {}


def rule(code: str, name: str, severity: Severity, summary: str):
    def register(fn: Callable[[LintContext], List[Diagnostic]]):
        if code in RULES:  # pragma: no cover — programming error
            raise ValueError(f"duplicate rule code {code}")
        RULES[code] = Rule(code, name, severity, summary, fn)
        return fn

    return register


def _diag(code: str, line: int, message: str, hint: Optional[str] = None) -> Diagnostic:
    registered = RULES[code]
    return Diagnostic(
        code=code,
        severity=registered.severity,
        line=line,
        message=message,
        rule=registered.name,
        hint=hint,
    )


def _run_heads(node_ids: Sequence[int]) -> List[int]:
    """First node of each maximal run of consecutive ids.

    Node ids are assigned in lexical order, so a block of dead
    statements is a run of consecutive ids; reporting only the head
    keeps e.g. a dead five-statement branch to one diagnostic.
    """
    id_set = set(node_ids)
    return [n for n in sorted(id_set) if n - 1 not in id_set]


# ---------------------------------------------------------------------------
# The rules


@rule(
    "SL101",
    "unreachable-code",
    Severity.WARNING,
    "statement can never execute (CFG reachability from ENTRY)",
)
def _check_unreachable(ctx: LintContext) -> List[Diagnostic]:
    dead = {node.id: node for node in ctx.cfg.unreachable_statements()}
    out = []
    for head in _run_heads(list(dead)):
        node = dead[head]
        out.append(
            _diag(
                "SL101",
                node.line,
                f"unreachable statement: {node.text}",
                hint=(
                    "no path from ENTRY reaches this statement; delete it "
                    "or fix the jump that diverts control around it"
                ),
            )
        )
    return out


@rule(
    "SL102",
    "dead-store",
    Severity.WARNING,
    "assigned value is never subsequently used (liveness)",
)
def _check_dead_store(ctx: LintContext) -> List[Diagnostic]:
    live_out = ctx.liveness.out
    read_somewhere = set()
    for node in ctx.cfg.statement_nodes():
        read_somewhere |= node.uses
    out = []
    for node in ctx.cfg.statement_nodes():
        if node.kind is not NodeKind.ASSIGN or node.id not in ctx.reachable:
            continue
        for var in sorted(node.defs):
            if var not in read_somewhere:
                continue  # never read anywhere: SL108's finding, not ours
            if var not in live_out[node.id]:
                out.append(
                    _diag(
                        "SL102",
                        node.line,
                        f"dead store: the value assigned to '{var}' here "
                        "is never used",
                        hint=(
                            f"every path reassigns '{var}' before reading "
                            "it (or never reads it again); remove the "
                            "assignment or use the value"
                        ),
                    )
                )
    return out


@rule(
    "SL103",
    "maybe-uninitialized",
    Severity.WARNING,
    "variable may be read before any assignment (definite assignment)",
)
def _check_uninitialized(ctx: LintContext) -> List[Diagnostic]:
    # Definite assignment is a *must* dataflow: a variable is safely
    # initialised at a node only when every ENTRY path assigns it first,
    # so IN is the intersection over predecessors (reaching definitions
    # — a may analysis — would miss a variable set on just one branch).
    cfg = ctx.cfg
    assigned_in = ctx.definitely_assigned
    out = []
    for node in cfg.statement_nodes():
        if node.id not in ctx.reachable:
            continue
        safe = assigned_in.get(node.id, frozenset())
        for var in sorted(node.uses):
            if var == INPUT_CURSOR or var in safe:
                continue
            out.append(
                _diag(
                    "SL103",
                    node.line,
                    f"'{var}' may be used before initialization "
                    "(uninitialized variables read as 0)",
                    hint=f"assign or read({var}) on every path to this "
                    "statement",
                )
            )
    return out


@rule(
    "SL104",
    "unused-label",
    Severity.WARNING,
    "label is never the target of a goto",
)
def _check_unused_label(ctx: LintContext) -> List[Diagnostic]:
    targets = {
        stmt.target
        for stmt in ctx.program.statements()
        if isinstance(stmt, Goto)
    }
    out = []
    for stmt in ctx.program.statements():
        if stmt.label is not None and stmt.label not in targets:
            out.append(
                _diag(
                    "SL104",
                    stmt.line,
                    f"label '{stmt.label}' is never the target of a goto",
                    hint="remove the unused label",
                )
            )
    return out


@rule(
    "SL105",
    "unstructured-jump",
    Severity.INFO,
    "goto target does not lexically succeed the jump (paper §4)",
)
def _check_unstructured_jump(ctx: LintContext) -> List[Diagnostic]:
    out = []
    for node_id in unstructured_jump_ids(ctx.cfg, ctx.lst):
        node = ctx.cfg.nodes[node_id]
        if node.goto_target is not None:
            out.append(
                _diag(
                    "SL105",
                    node.line,
                    f"unstructured jump: goto '{node.goto_target}' does "
                    "not jump to one of its lexical successors",
                    hint=(
                        "legal, but the structured-only slicers "
                        "(Figs. 12/13) refuse programs containing such "
                        "jumps; use a correct-general algorithm"
                    ),
                )
            )
    return out


@rule(
    "SL106",
    "constant-condition",
    Severity.WARNING,
    "predicate always evaluates to the same value",
)
def _check_constant_condition(ctx: LintContext) -> List[Diagnostic]:
    out = []
    for node in ctx.cfg.statement_nodes():
        if node.kind not in (
            NodeKind.PREDICATE,
            NodeKind.CONDGOTO,
            NodeKind.SWITCH,
        ):
            continue
        stmt = node.stmt
        if isinstance(stmt, Switch):
            value = _fold_constant(stmt.subject)
            if value is not None:
                out.append(
                    _diag(
                        "SL106",
                        node.line,
                        f"switch subject is always {value}; at most one "
                        "arm can ever be selected",
                        hint="replace the switch with the selected arm",
                    )
                )
            continue
        if isinstance(stmt, (If, While, DoWhile)):
            cond = stmt.cond
        elif isinstance(stmt, For):
            cond = stmt.cond
            if cond is None:
                continue  # for(;;) — idiomatic infinite loop header
        else:  # pragma: no cover — no other predicate kinds exist
            continue
        value = _fold_constant(cond)
        if value is not None:
            truth = "true" if value else "false"
            out.append(
                _diag(
                    "SL106",
                    node.line,
                    f"condition always evaluates to {value} ({truth})",
                    hint="simplify the condition or remove the dead arm",
                )
            )
    return out


@rule(
    "SL107",
    "no-reachable-exit",
    Severity.WARNING,
    "control can never reach EXIT from this statement",
)
def _check_no_exit(ctx: LintContext) -> List[Diagnostic]:
    stuck = {
        node.id: node
        for node in ctx.cfg.statement_nodes()
        if node.id in ctx.reachable and node.id not in ctx.reaches_exit
    }
    out = []
    for head in _run_heads(list(stuck)):
        node = stuck[head]
        out.append(
            _diag(
                "SL107",
                node.line,
                "control can never reach EXIT from this statement "
                "(non-terminating loop)",
                hint=(
                    "postdominators are undefined for such statements, so "
                    "every slicing analysis refuses this program; add an "
                    "exit path (break/return or a falsifiable condition)"
                ),
            )
        )
    return out


@rule(
    "SL108",
    "never-read-variable",
    Severity.WARNING,
    "variable is written but never read",
)
def _check_never_read(ctx: LintContext) -> List[Diagnostic]:
    first_def: Dict[str, int] = {}
    read_somewhere = set()
    for node in ctx.cfg.statement_nodes():
        for var in node.defs:
            first_def.setdefault(var, node.line)
        read_somewhere |= node.uses
    out = []
    for var in sorted(first_def):
        if var == INPUT_CURSOR or var in read_somewhere:
            continue
        out.append(
            _diag(
                "SL108",
                first_def[var],
                f"variable '{var}' is written but never read",
                hint=f"remove '{var}' or write() the value",
            )
        )
    return out


# ---------------------------------------------------------------------------
# Constant folding (SL106)


def _fold_constant(expr: Expr) -> Optional[int]:
    """Evaluate *expr* when it contains no variables or calls; None when
    it is not a compile-time constant (including division by zero)."""
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Unary):
        value = _fold_constant(expr.operand)
        if value is None:
            return None
        if expr.op == "-":
            return -value
        if expr.op == "!":
            return int(not value)
        return None
    if isinstance(expr, Binary):
        left = _fold_constant(expr.left)
        right = _fold_constant(expr.right)
        if left is None or right is None:
            return None
        try:
            return _apply_binary(expr.op, left, right)
        except ZeroDivisionError:
            return None
    return None


def _apply_binary(op: str, left: int, right: int) -> Optional[int]:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return int(left / right)  # C-style truncation toward zero
    if op == "%":
        return left - int(left / right) * right
    if op == "<":
        return int(left < right)
    if op == "<=":
        return int(left <= right)
    if op == ">":
        return int(left > right)
    if op == ">=":
        return int(left >= right)
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "||":
        return int(bool(left) or bool(right))
    return None


# ---------------------------------------------------------------------------
# Driver


def run_lint(
    source_or_program: Union[str, Program],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint a program: front-end validation plus every registered rule.

    Accepts source text (syntax errors become an ``SL001`` diagnostic
    rather than an exception) or an already parsed :class:`Program`.
    When validation reports errors the analysis rules are skipped — no
    CFG exists for an invalid program.  *select*/*ignore* are code
    prefixes (``SL1`` matches all SL1xx), applied select-first.
    """
    diagnostics: List[Diagnostic] = []
    program: Optional[Program] = None
    source: Optional[str] = None
    if isinstance(source_or_program, Program):
        program = source_or_program
    else:
        source = source_or_program
        try:
            with trace_span("lint-parse", bytes=len(source)):
                program = parse_program(source)
        except (LexError, ParseError) as error:
            location = error.location
            diagnostics.append(
                Diagnostic(
                    code=CODE_SYNTAX_ERROR,
                    severity=Severity.ERROR,
                    line=location.line if location else 0,
                    column=location.column if location else None,
                    message=error.message,
                    rule="syntax-error",
                )
            )
    if program is not None:
        with trace_span("lint-validate"):
            front = check_program_diagnostics(program)
        diagnostics.extend(front)
        if not any(d.severity is Severity.ERROR for d in front):
            context = LintContext(program, source=source)
            with trace_span("lint-rules", rules=len(RULES)) as span:
                for code in sorted(RULES):
                    diagnostics.extend(RULES[code].check(context))
                span.set(diagnostics=len(diagnostics))
    kept = filter_diagnostics(diagnostics, select=select, ignore=ignore)
    return LintReport(diagnostics=sort_diagnostics(kept))
