"""The structured diagnostic model behind ``slang check``.

A :class:`Diagnostic` is one finding about a program: a stable code
(``SL101``), a severity, a source position, a human message, and an
optional fix hint.  The model is deliberately dependency-free (stdlib
only) so the front end (:mod:`repro.lang.validate`) can emit diagnostics
without importing any analysis machinery — the analysis-backed rules
live in :mod:`repro.lint.rules`.

Code space
----------

====== ==========================================================
range  producer
====== ==========================================================
SL0xx  front end: syntax + semantic validation (``lang/validate``)
SL1xx  analysis-backed lint rules (``lint/rules``)
SL2xx  slice well-formedness verifier (``lint/slice_check``)
====== ==========================================================

The JSON shape of a diagnostic is fixed (every key always present, so
clients need no existence checks)::

    {"code": "SL101", "severity": "warning", "line": 7, "column": null,
     "message": "...", "rule": "unreachable-code", "hint": "..." }
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` — the program is invalid (or a slice is provably broken);
    ``WARNING`` — valid but almost certainly not what the author meant;
    ``INFO`` — a noteworthy property, not a defect (e.g. an unstructured
    jump, which merely gates the structured-only slicers).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover — cosmetic
        return self.value


#: Sort rank: errors first within a line? No — diagnostics sort by
#: position, so a report reads top-to-bottom like the source; severity
#: only breaks ties at the same position.
_SEVERITY_RANK = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding, addressable by a stable code.

    Attributes
    ----------
    code:
        Stable identifier (``SL101``); never reused for a different
        meaning once released.
    severity:
        :class:`Severity`.
    line:
        1-based source line (0 when unknown, e.g. a file-level finding).
    message:
        The finding, without any ``line N:`` prefix (renderers add it).
    rule:
        Kebab-case rule slug (``unreachable-code``); groups codes for
        humans and the ``/stats`` counters.
    column:
        1-based column when known (lexer/parser findings), else None.
    hint:
        Optional fix suggestion.
    """

    code: str
    severity: Severity
    line: int
    message: str
    rule: str = ""
    column: Optional[int] = None
    hint: Optional[str] = None

    def sort_key(self) -> Tuple[int, int, int, str, str]:
        return (
            self.line,
            self.column or 0,
            _SEVERITY_RANK[self.severity],
            self.code,
            self.message,
        )

    def to_dict(self) -> Dict[str, Any]:
        """The wire shape — every key always present."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "rule": self.rule,
            "hint": self.hint,
        }

    def format(self) -> str:
        """One human-readable line (plus an indented hint line)."""
        where = f"line {self.line}"
        if self.column is not None:
            where += f":{self.column}"
        tag = f" [{self.rule}]" if self.rule else ""
        text = f"{where}: {self.severity.value} {self.code}{tag}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> Tuple[Diagnostic, ...]:
    """Stable report order: by position, then severity, then code."""
    return tuple(sorted(diagnostics, key=Diagnostic.sort_key))


def matches_any(code: str, prefixes: Sequence[str]) -> bool:
    """Prefix selection, flake8-style: ``SL1`` matches every SL1xx code."""
    return any(code.startswith(prefix) for prefix in prefixes)


def filter_diagnostics(
    diagnostics: Iterable[Diagnostic],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Apply ``--select`` / ``--ignore`` code prefixes (select first)."""
    kept = list(diagnostics)
    if select:
        kept = [d for d in kept if matches_any(d.code, select)]
    if ignore:
        kept = [d for d in kept if not matches_any(d.code, ignore)]
    return kept


def count_by_code(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for diagnostic in diagnostics:
        counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
    return counts


def severity_counts(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    counts = {severity.value: 0 for severity in Severity}
    for diagnostic in diagnostics:
        counts[diagnostic.severity.value] += 1
    return counts


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run — an ordered diagnostic tuple plus
    the derived views every surface needs (text, JSON, counters)."""

    diagnostics: Tuple[Diagnostic, ...]

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def counts(self) -> Dict[str, int]:
        return count_by_code(self.diagnostics)

    def payload(self) -> Dict[str, Any]:
        """The canonical JSON view (``slang check --format json`` and
        ``POST /check`` both serialise exactly this)."""
        return {
            "clean": self.clean,
            "counts": self.counts(),
            "summary": severity_counts(self.diagnostics),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def format_text(self) -> str:
        """The ``--format text`` report: one line per diagnostic, then a
        one-line summary."""
        lines = [d.format() for d in self.diagnostics]
        summary = severity_counts(self.diagnostics)
        total = len(self.diagnostics)
        if total == 0:
            lines.append("no diagnostics")
        else:
            parts = [
                f"{count} {name}{'s' if count != 1 else ''}"
                for name, count in summary.items()
                if count
            ]
            noun = "diagnostic" if total == 1 else "diagnostics"
            lines.append(f"{total} {noun}: " + ", ".join(parts))
        return "\n".join(lines)
