"""Slicing (a subset of) real Python via the stdlib ``ast`` module.

Python has no ``goto``, but it has the paper's structured jumps —
``break``, ``continue``, ``return`` — so the Fig. 12/13 algorithms apply
directly.  :func:`translate_source` maps a Python subset onto SL
statement for statement (keeping Python line numbers), and
:func:`slice_python` runs any registered slicing algorithm over it,
reporting which *Python lines* belong to the slice.
"""

from repro.pyfront.translate import TranslationError, translate_source
from repro.pyfront.slicer import PythonSliceReport, slice_python

__all__ = [
    "PythonSliceReport",
    "TranslationError",
    "slice_python",
    "translate_source",
]
