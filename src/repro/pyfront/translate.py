"""Python-subset → SL translation (stdlib ``ast`` based).

Supported statements::

    x = expr            x += expr (and -=, *=, //=, %=)
    if / elif / else    while cond:      for i in range(...):
    break / continue / return [expr]
    print(expr)         → write(expr)
    x = read()          → read(x)
    pass                → ;

Supported expressions: integer literals, names, ``+ - * // %``, unary
``-``/``not``, comparisons, ``and``/``or``, calls to intrinsics
(``f1`` … ``eof()``).  Chained comparisons (``a < b < c``) expand to
conjunctions.  ``True``/``False`` become ``1``/``0``.

Every translated statement keeps its **Python line number**, so slicing
criteria and slice reports speak in terms of the original file.
Anything outside the subset raises :class:`TranslationError` naming the
construct and its line.
"""

from __future__ import annotations

import ast as pyast
from typing import List

from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Continue,
    Expr,
    For,
    If,
    Num,
    Program,
    Read,
    Return,
    Skip,
    Stmt,
    Unary,
    Var,
    While,
    Write,
)
from repro.lang.errors import SlangError


class TranslationError(SlangError):
    """A Python construct outside the supported subset."""


_BINOPS = {
    pyast.Add: "+",
    pyast.Sub: "-",
    pyast.Mult: "*",
    pyast.FloorDiv: "/",
    pyast.Mod: "%",
}

_CMPOPS = {
    pyast.Lt: "<",
    pyast.LtE: "<=",
    pyast.Gt: ">",
    pyast.GtE: ">=",
    pyast.Eq: "==",
    pyast.NotEq: "!=",
}


def _fail(node: pyast.AST, what: str) -> TranslationError:
    line = getattr(node, "lineno", "?")
    return TranslationError(
        f"line {line}: unsupported Python construct: {what}"
    )


def _expr(node: pyast.expr) -> Expr:
    if isinstance(node, pyast.Constant):
        if isinstance(node.value, bool):
            return Num(1 if node.value else 0)
        if isinstance(node.value, int):
            return Num(node.value)
        raise _fail(node, f"non-integer constant {node.value!r}")
    if isinstance(node, pyast.Name):
        return Var(node.id)
    if isinstance(node, pyast.BinOp):
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise _fail(node, f"operator {type(node.op).__name__}")
        return Binary(op=op, left=_expr(node.left), right=_expr(node.right))
    if isinstance(node, pyast.UnaryOp):
        if isinstance(node.op, pyast.USub):
            return Unary(op="-", operand=_expr(node.operand))
        if isinstance(node.op, pyast.Not):
            return Unary(op="!", operand=_expr(node.operand))
        raise _fail(node, f"unary {type(node.op).__name__}")
    if isinstance(node, pyast.BoolOp):
        op = "&&" if isinstance(node.op, pyast.And) else "||"
        result = _expr(node.values[0])
        for value in node.values[1:]:
            result = Binary(op=op, left=result, right=_expr(value))
        return result
    if isinstance(node, pyast.Compare):
        parts: List[Expr] = []
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            sl_op = _CMPOPS.get(type(op))
            if sl_op is None:
                raise _fail(node, f"comparison {type(op).__name__}")
            parts.append(
                Binary(op=sl_op, left=_expr(left), right=_expr(right))
            )
            left = right
        result = parts[0]
        for part in parts[1:]:
            result = Binary(op="&&", left=result, right=part)
        return result
    if isinstance(node, pyast.Call):
        if not isinstance(node.func, pyast.Name):
            raise _fail(node, "call through a non-name")
        if node.keywords:
            raise _fail(node, "keyword arguments")
        return Call(
            name=node.func.id,
            args=tuple(_expr(arg) for arg in node.args),
        )
    raise _fail(node, type(node).__name__)


def _range_bounds(call: pyast.Call) -> tuple:
    args = [_expr(arg) for arg in call.args]
    if len(args) == 1:
        return Num(0), args[0], Num(1)
    if len(args) == 2:
        return args[0], args[1], Num(1)
    if len(args) == 3:
        return args[0], args[1], args[2]
    raise _fail(call, f"range() with {len(args)} arguments")


def _stmt(node: pyast.stmt) -> Stmt:
    line = node.lineno
    if isinstance(node, pyast.Pass):
        return Skip(line=line)
    if isinstance(node, pyast.Assign):
        if len(node.targets) != 1 or not isinstance(node.targets[0], pyast.Name):
            raise _fail(node, "assignment to a non-name or multiple targets")
        target = node.targets[0].id
        # `x = read()` is the input-statement idiom.
        if (
            isinstance(node.value, pyast.Call)
            and isinstance(node.value.func, pyast.Name)
            and node.value.func.id == "read"
            and not node.value.args
        ):
            return Read(line=line, target=target)
        return Assign(line=line, target=target, value=_expr(node.value))
    if isinstance(node, pyast.AugAssign):
        if not isinstance(node.target, pyast.Name):
            raise _fail(node, "augmented assignment to a non-name")
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise _fail(node, f"augmented operator {type(node.op).__name__}")
        target = node.target.id
        return Assign(
            line=line,
            target=target,
            value=Binary(op=op, left=Var(target), right=_expr(node.value)),
        )
    if isinstance(node, pyast.Expr):
        value = node.value
        if (
            isinstance(value, pyast.Call)
            and isinstance(value.func, pyast.Name)
            and value.func.id == "print"
        ):
            if len(value.args) != 1:
                raise _fail(node, "print() with != 1 argument")
            return Write(line=line, value=_expr(value.args[0]))
        raise _fail(node, "expression statement (only print() is allowed)")
    if isinstance(node, pyast.If):
        return If(
            line=line,
            cond=_expr(node.test),
            then_branch=_block(node.body, line),
            else_branch=_block(node.orelse, line) if node.orelse else None,
        )
    if isinstance(node, pyast.While):
        if node.orelse:
            raise _fail(node, "while-else")
        return While(
            line=line, cond=_expr(node.test), body=_block(node.body, line)
        )
    if isinstance(node, pyast.For):
        if node.orelse:
            raise _fail(node, "for-else")
        if not isinstance(node.target, pyast.Name):
            raise _fail(node, "for over a non-name target")
        if not (
            isinstance(node.iter, pyast.Call)
            and isinstance(node.iter.func, pyast.Name)
            and node.iter.func.id == "range"
        ):
            raise _fail(node, "for over anything but range()")
        start, stop, step = _range_bounds(node.iter)
        counter = node.target.id
        return For(
            line=line,
            init=Assign(line=line, target=counter, value=start),
            cond=Binary(op="<", left=Var(counter), right=stop),
            step=Assign(
                line=line,
                target=counter,
                value=Binary(op="+", left=Var(counter), right=step),
            ),
            body=_block(node.body, line),
        )
    if isinstance(node, pyast.Break):
        return Break(line=line)
    if isinstance(node, pyast.Continue):
        return Continue(line=line)
    if isinstance(node, pyast.Return):
        return Return(
            line=line,
            value=_expr(node.value) if node.value is not None else None,
        )
    raise _fail(node, type(node).__name__)


def _block(stmts: List[pyast.stmt], line: int) -> Block:
    return Block(line=line, stmts=[_stmt(stmt) for stmt in stmts])


def translate_source(source: str) -> Program:
    """Translate Python *source* (a module body, or a module defining a
    single function whose body is taken) into an SL :class:`Program`."""
    module = pyast.parse(source)
    body = module.body
    if len(body) == 1 and isinstance(body[0], pyast.FunctionDef):
        body = body[0].body
    return Program(body=[_stmt(stmt) for stmt in body], source=source)
