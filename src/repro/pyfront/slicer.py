"""Slice Python programs and report in Python terms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.pdg.builder import analyze_program
from repro.pyfront.translate import translate_source
from repro.slicing.common import SliceResult
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.registry import get_algorithm


@dataclass
class PythonSliceReport:
    """The result of slicing a Python program.

    ``lines`` are the Python source lines in the slice; ``annotated``
    marks them in the original text.
    """

    source: str
    criterion: SlicingCriterion
    algorithm: str
    result: SliceResult
    lines: List[int]

    @property
    def annotated(self) -> str:
        members = set(self.lines)
        out = []
        for number, text in enumerate(self.source.splitlines(), start=1):
            marker = ">" if number in members else " "
            out.append(f"{marker} {number:>4} {text}")
        return "\n".join(out)


def slice_python(
    source: str, line: int, var: str, algorithm: str = "structured"
) -> PythonSliceReport:
    """Slice Python *source* w.r.t. ``(var, line)``.

    The translated SL program keeps Python line numbers, so both the
    criterion and the report are expressed against the Python file.  The
    default algorithm is the paper's Fig. 12 — Python jumps are always
    structured (there is no goto).
    """
    program = translate_source(source)
    analysis = analyze_program(program)
    slicer = get_algorithm(algorithm)
    result = slicer(analysis, SlicingCriterion(line=line, var=var))
    return PythonSliceReport(
        source=source,
        criterion=result.criterion,
        algorithm=algorithm,
        result=result,
        lines=result.lines(),
    )
