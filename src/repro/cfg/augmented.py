"""The Ball–Horwitz / Choi–Ferrante *augmented* control flowgraph.

Both prior algorithms (paper §1, §5) rebuild control dependence from a
flowgraph in which every unconditional jump has been turned into a
pseudo-predicate: besides its real (taken) edge, the jump gets a second,
never-executed edge to the statement that *immediately lexically
succeeds* it.  Statements whose execution hinges on the jump then become
control dependent on it, and conventional PDG slicing picks jumps up
automatically.

Agrawal's point is that this graph surgery is avoidable; we build the
augmented graph anyway as the baseline his equivalence claim is tested
against (experiment C1 in DESIGN.md).
"""

from __future__ import annotations

from repro.cfg.graph import ControlFlowGraph, NodeKind


#: Label used for the synthetic not-taken edge out of a jump node.
NOT_TAKEN = "not-taken"


def build_augmented_cfg(cfg: ControlFlowGraph) -> ControlFlowGraph:
    """Return a new graph: *cfg* plus a not-taken edge from every
    unconditional jump to its immediate lexical successor.

    Node objects are shared with the base graph (they are immutable for
    our purposes); adjacency is fresh.  The ``lexical_parent`` map — the
    builder's record of each node's immediate lexical successor — supplies
    the augmentation targets, which is exactly the "continuation" of Ball
    & Horwitz and the "fall-through statement" of Choi & Ferrante.
    """
    augmented = ControlFlowGraph()
    augmented.nodes = dict(cfg.nodes)
    augmented._succ = {node_id: [] for node_id in cfg.nodes}
    augmented._pred = {node_id: [] for node_id in cfg.nodes}
    augmented._next_id = max(cfg.nodes) + 1
    augmented.entry_id = cfg.entry_id
    augmented.exit_id = cfg.exit_id
    augmented._stmt_node = dict(cfg._stmt_node)
    augmented._stmt_entry = dict(cfg._stmt_entry)
    augmented.label_entry = dict(cfg.label_entry)
    augmented.lexical_parent = dict(cfg.lexical_parent)

    for src, dst, label in cfg.edges():
        augmented.add_edge(src, dst, label)

    for node in cfg.sorted_nodes():
        if node.kind in (
            NodeKind.GOTO,
            NodeKind.BREAK,
            NodeKind.CONTINUE,
            NodeKind.RETURN,
        ):
            successor = cfg.lexical_parent.get(node.id, cfg.exit_id)
            # A degenerate jump to its own fall-through (`goto L; L: ...`)
            # gets a parallel edge; the graph is a multigraph, so that is
            # harmless and keeps the node uniformly a pseudo-predicate.
            augmented.add_edge(node.id, successor, NOT_TAKEN)
    return augmented
