"""The control-flow graph data structure.

Nodes are *statements* (the granularity the paper works at): simple
statements, predicates of structured constructs, unconditional jumps, and
the fused conditional-goto.  ``Block`` AST nodes never become CFG nodes.
Two synthetic nodes, ENTRY and EXIT, bracket the program.

Edges carry a label (:class:`EdgeLabel`) describing why control flows:
``TRUE``/``FALSE`` out of predicates, ``case k``/``default`` out of a
switch, ``FALL`` for straight-line flow, and ``JUMP`` for the taken edge
of an unconditional jump.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.lang.ast_nodes import Stmt


class NodeKind(enum.Enum):
    """The kind of program point a CFG node represents."""

    ENTRY = "entry"
    EXIT = "exit"
    ASSIGN = "assign"
    READ = "read"
    WRITE = "write"
    SKIP = "skip"
    PREDICATE = "predicate"  # if / while / do-while / for conditions
    SWITCH = "switch"
    CONDGOTO = "condgoto"  # fused `if (e) goto L;`
    GOTO = "goto"
    BREAK = "break"
    CONTINUE = "continue"
    RETURN = "return"
    # Interprocedural node kinds (the SDG parameter model).
    CALL = "call"  # `call f(...)` transfer-of-control point
    ACTUAL_IN = "actual-in"  # caller-side copy-in of one argument
    ACTUAL_OUT = "actual-out"  # caller-side copy-out into a variable arg
    FORMAL_IN = "formal-in"  # callee-side definition of one formal
    FORMAL_OUT = "formal-out"  # callee-side final use of one formal


#: Node kinds that are unconditional jump statements — the paper's "jump
#: statements" modulo the conditional case, which fusion turns into
#: CONDGOTO predicates.
JUMP_KINDS = frozenset(
    {NodeKind.GOTO, NodeKind.BREAK, NodeKind.CONTINUE, NodeKind.RETURN}
)

#: Node kinds that branch (more than one successor is possible).
BRANCH_KINDS = frozenset(
    {NodeKind.PREDICATE, NodeKind.SWITCH, NodeKind.CONDGOTO, NodeKind.ENTRY}
)

#: Synthetic parameter-transfer kinds (SDG vertices that are CFG nodes
#: but not statements of their own — they share their statement with a
#: call site, or belong to the enclosing procedure's interface).
PARAM_KINDS = frozenset(
    {
        NodeKind.ACTUAL_IN,
        NodeKind.ACTUAL_OUT,
        NodeKind.FORMAL_IN,
        NodeKind.FORMAL_OUT,
    }
)


class EdgeLabel:
    """Edge label constants plus the ``case`` constructor."""

    TRUE = "true"
    FALSE = "false"
    FALL = "fall"
    JUMP = "jump"
    DEFAULT = "default"

    @staticmethod
    def case(value: int) -> str:
        return f"case {value}"


@dataclass
class CFGNode:
    """One CFG node.

    Attributes
    ----------
    id:
        Dense integer identifier, unique within its graph.
    kind:
        What the node represents.
    stmt:
        The AST statement (None for ENTRY/EXIT).
    line:
        Source line, for diagnostics and the paper-numbering helper.
    defs / uses:
        Variables defined and used.  ``read`` defines the pseudo-variable
        ``$in`` (the input-stream cursor) and uses it, and ``eof()`` uses
        it, so reads chain by data dependence and slices never misalign
        the input stream.
    text:
        A short human-readable rendering for graph dumps.
    goto_target:
        For GOTO and CONDGOTO nodes, the textual target label.
    call_name:
        For CALL / ACTUAL_IN / ACTUAL_OUT nodes, the callee's name.
    param:
        For parameter-transfer nodes, the parameter's name.
    param_index:
        For parameter-transfer nodes, the parameter's position in the
        callee's interface (implicit ``$in`` comes last).
    """

    id: int
    kind: NodeKind
    stmt: Optional[Stmt] = None
    line: int = 0
    defs: FrozenSet[str] = frozenset()
    uses: FrozenSet[str] = frozenset()
    text: str = ""
    goto_target: Optional[str] = None
    call_name: Optional[str] = None
    param: Optional[str] = None
    param_index: Optional[int] = None

    @property
    def is_jump(self) -> bool:
        """True for unconditional jump nodes (goto/break/continue/return)."""
        return self.kind in JUMP_KINDS

    @property
    def is_branch(self) -> bool:
        """True when the node may have more than one successor."""
        return self.kind in BRANCH_KINDS

    def __repr__(self) -> str:
        return f"CFGNode({self.id}, {self.kind.value}, {self.text!r})"


class ControlFlowGraph:
    """A labelled control-flow graph over statement nodes.

    The graph also records, for every AST statement, which node represents
    it (``node_of``) and which node control first reaches when the
    statement executes (``entry_of``) — the latter drives goto resolution
    and the lexical-successor tree.
    """

    def __init__(self) -> None:
        self.nodes: Dict[int, CFGNode] = {}
        self._succ: Dict[int, List[Tuple[int, str]]] = {}
        self._pred: Dict[int, List[Tuple[int, str]]] = {}
        self.entry_id: int = -1
        self.exit_id: int = -1
        #: id(stmt) -> node id for every statement that owns a node.
        self._stmt_node: Dict[int, int] = {}
        #: id(stmt) -> node id first executed when the statement runs.
        self._stmt_entry: Dict[int, int] = {}
        #: goto label -> node id of the labelled statement's entry.
        self.label_entry: Dict[str, int] = {}
        #: node id -> id of its immediate lexical successor (the node
        #: control reaches if the statement is deleted); recorded by the
        #: builder, wrapped by repro.analysis.lexical.
        self.lexical_parent: Dict[int, int] = {}
        #: call node id -> the full call-site chain, in control order:
        #: actual-in nodes, the call node itself, actual-out nodes.
        self.call_chains: Dict[int, List[int]] = {}
        #: formal-in node ids (procedure units only), in parameter order.
        self.formal_ins: List[int] = []
        #: formal-out node ids (procedure units only), in parameter order.
        self.formal_outs: List[int] = []
        #: the unit this CFG analyzes (main, or a proc's name).
        self.unit_name: str = "main"
        self._next_id = 0
        #: start node id -> reachable set; criterion resolution asks for
        #: reachability from ENTRY on every query, so memoize per start
        #: and invalidate on any structural mutation.
        self._reach_cache: Dict[int, FrozenSet[int]] = {}

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def new_node(
        self,
        kind: NodeKind,
        stmt: Optional[Stmt] = None,
        line: int = 0,
        defs: FrozenSet[str] = frozenset(),
        uses: FrozenSet[str] = frozenset(),
        text: str = "",
        goto_target: Optional[str] = None,
        call_name: Optional[str] = None,
        param: Optional[str] = None,
        param_index: Optional[int] = None,
    ) -> CFGNode:
        node = CFGNode(
            id=self._next_id,
            kind=kind,
            stmt=stmt,
            line=line,
            defs=defs,
            uses=uses,
            text=text,
            goto_target=goto_target,
            call_name=call_name,
            param=param,
            param_index=param_index,
        )
        self._next_id += 1
        self.nodes[node.id] = node
        self._succ[node.id] = []
        self._pred[node.id] = []
        self._reach_cache.clear()
        return node

    def add_edge(self, src: int, dst: int, label: str) -> None:
        """Add a labelled edge; parallel edges with distinct labels are
        allowed (a two-armed switch to the same target, for example)."""
        if src not in self.nodes or dst not in self.nodes:
            raise KeyError(f"edge ({src}, {dst}) references unknown node")
        self._succ[src].append((dst, label))
        self._pred[dst].append((src, label))
        self._reach_cache.clear()

    def map_stmt(self, stmt: Stmt, node_id: int) -> None:
        self._stmt_node[id(stmt)] = node_id

    def map_entry(self, stmt: Stmt, node_id: int) -> None:
        self._stmt_entry[id(stmt)] = node_id

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def entry(self) -> CFGNode:
        return self.nodes[self.entry_id]

    @property
    def exit(self) -> CFGNode:
        return self.nodes[self.exit_id]

    def successors(self, node_id: int) -> List[Tuple[int, str]]:
        """Outgoing ``(target, label)`` pairs, in insertion order."""
        return list(self._succ[node_id])

    def predecessors(self, node_id: int) -> List[Tuple[int, str]]:
        """Incoming ``(source, label)`` pairs, in insertion order."""
        return list(self._pred[node_id])

    def succ_ids(self, node_id: int) -> List[int]:
        return [dst for dst, _ in self._succ[node_id]]

    def pred_ids(self, node_id: int) -> List[int]:
        return [src for src, _ in self._pred[node_id]]

    def edges(self) -> Iterator[Tuple[int, int, str]]:
        """Iterate all ``(src, dst, label)`` edges."""
        for src, targets in self._succ.items():
            for dst, label in targets:
                yield src, dst, label

    def node_of(self, stmt: Stmt) -> int:
        """The node representing *stmt* (raises KeyError if it has none,
        for example a Block)."""
        return self._stmt_node[id(stmt)]

    def has_node_for(self, stmt: Stmt) -> bool:
        return id(stmt) in self._stmt_node

    def entry_of(self, stmt: Stmt) -> int:
        """The node control first reaches when *stmt* executes."""
        return self._stmt_entry[id(stmt)]

    def jump_nodes(self) -> List[CFGNode]:
        """All unconditional jump nodes, in node-id (program) order."""
        return [n for n in self.sorted_nodes() if n.is_jump]

    def sorted_nodes(self) -> List[CFGNode]:
        return [self.nodes[i] for i in sorted(self.nodes)]

    def statement_nodes(self) -> List[CFGNode]:
        """All nodes except ENTRY and EXIT, in node-id order."""
        return [
            n
            for n in self.sorted_nodes()
            if n.kind not in (NodeKind.ENTRY, NodeKind.EXIT)
        ]

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Reachability helpers.
    # ------------------------------------------------------------------

    def reachable_from(self, start: int) -> FrozenSet[int]:
        """Node ids reachable from *start* (inclusive) along edges.

        Memoized per start node; the cache is cleared by ``new_node`` and
        ``add_edge`` so mutation during construction stays safe.
        """
        cached = self._reach_cache.get(start)
        if cached is not None:
            return cached
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for nxt in self.succ_ids(current):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        result = frozenset(seen)
        self._reach_cache[start] = result
        return result

    def reaches(self, start: int, goal: int) -> bool:
        """True when *goal* is reachable from *start*."""
        return goal in self.reachable_from(start)

    def unreachable_statements(self) -> List[CFGNode]:
        """Statement nodes not reachable from ENTRY (dead code).

        Dead code voids the paper's §4 property 2 — a jump guarding dead
        code is needed in a slice even though no predicate controlling it
        is — so the Fig. 12/13 slicers refuse programs that have any (the
        Fig. 7 algorithm handles them fine).
        """
        live = self.reachable_from(self.entry_id)
        return [
            node
            for node in self.statement_nodes()
            if node.id not in live
        ]

    # ------------------------------------------------------------------
    # Interop.
    # ------------------------------------------------------------------

    def to_networkx(self):
        """Export to a ``networkx.MultiDiGraph`` (labels as edge data)."""
        import networkx as nx

        graph = nx.MultiDiGraph()
        for node in self.sorted_nodes():
            graph.add_node(node.id, kind=node.kind.value, text=node.text)
        for src, dst, label in self.edges():
            graph.add_edge(src, dst, label=label)
        return graph

    def describe(self) -> str:
        """A compact multi-line dump used in error messages and tests."""
        lines = []
        for node in self.sorted_nodes():
            succs = ", ".join(
                f"{dst}[{label}]" for dst, label in self._succ[node.id]
            )
            lines.append(
                f"{node.id:>3} {node.kind.value:<9} "
                f"line={node.line:<3} {node.text}  -> {succs}"
            )
        return "\n".join(lines)
