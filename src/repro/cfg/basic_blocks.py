"""Basic-block partition of a CFG.

Used by the Gallagher baseline slicer, whose inclusion rule speaks of
"a statement in the block labeled L": the basic block that starts at the
label's entry node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cfg.graph import ControlFlowGraph, NodeKind


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of CFG nodes."""

    index: int
    node_ids: List[int] = field(default_factory=list)

    @property
    def leader(self) -> int:
        return self.node_ids[0]


def _is_leader(cfg: ControlFlowGraph, node_id: int) -> bool:
    """A node leads a block when control can arrive from more than one
    place, or from a branching / jumping predecessor."""
    node = cfg.nodes[node_id]
    if node.kind in (NodeKind.ENTRY, NodeKind.EXIT):
        return True
    preds = cfg.pred_ids(node_id)
    if len(preds) != 1:
        return True
    pred = cfg.nodes[preds[0]]
    return pred.is_branch or pred.is_jump or len(cfg.succ_ids(preds[0])) != 1


def compute_basic_blocks(cfg: ControlFlowGraph) -> Dict[int, BasicBlock]:
    """Partition all CFG nodes into basic blocks.

    Returns a map from node id to the block containing it.  Blocks follow
    node-id (program) order of their leaders.
    """
    leaders = [n.id for n in cfg.sorted_nodes() if _is_leader(cfg, n.id)]
    blocks: Dict[int, BasicBlock] = {}
    by_node: Dict[int, BasicBlock] = {}
    for index, leader in enumerate(sorted(leaders)):
        block = BasicBlock(index=index)
        current = leader
        while True:
            block.node_ids.append(current)
            by_node[current] = block
            succs = cfg.succ_ids(current)
            node = cfg.nodes[current]
            if len(succs) != 1 or node.is_jump or node.is_branch:
                break
            nxt = succs[0]
            if _is_leader(cfg, nxt):
                break
            current = nxt
        blocks[leader] = block
    return by_node
