"""AST → CFG construction.

Node creation happens in a first, purely lexical pass, so node ids follow
source order: ENTRY is node 0, statements get 1..n in lexical order, and
EXIT is the last node.  For the paper's example programs this makes node
ids coincide with the paper's statement numbers (and ENTRY with the dummy
predicate "node 0" of its control-dependence graphs).

A second pass wires edges right-to-left through each statement sequence,
threading three continuations: the *next* node for normal completion, and
the *break* / *continue* targets.  ``goto`` edges are deferred until every
label's entry node is known.

Two behaviours worth calling out:

* **CONDGOTO fusion** — ``if (e) goto L;`` (then-branch a bare goto, no
  else) becomes a single predicate node, exactly as the paper numbers it
  (Fig. 3a lines 3 and 5).  The conventional slicing algorithm's
  "adaptation" (an included predicate brings its jump along) then needs
  no special code.
* **Input-stream chaining** — ``read(v)`` defines the pseudo-variable
  ``$in`` besides ``v``, and uses it; expressions calling ``eof()`` use
  ``$in``.  Successive reads are therefore linked by data dependence, so
  no correct slice can drop an earlier ``read`` while keeping a later one
  (which would silently shift the input stream).  Disable with
  ``chain_io=False`` to get the textbook def/use sets.

The builder also records, for every statement node, its **lexical
successor**: the node control would reach if the statement were deleted.
That is precisely the wiring-time *next* continuation, so the lexical
successor tree of paper §3 falls out of construction for free (the
:mod:`repro.analysis.lexical` module wraps it and also rebuilds it
independently from the AST as a cross-check).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.cfg.graph import ControlFlowGraph, EdgeLabel, NodeKind
from repro.lang.ast_nodes import (
    Assign,
    Block,
    Break,
    CallStmt,
    Continue,
    DoWhile,
    Expr,
    For,
    Goto,
    If,
    MAIN_UNIT,
    Num,
    Program,
    Read,
    Return,
    Skip,
    Stmt,
    Switch,
    While,
    Write,
)
from repro.lang.errors import ValidationError
from repro.lang.pretty import pretty_expr
from repro.lang.validate import check_program

#: Pseudo-variable modelling the input-stream cursor.
INPUT_CURSOR = "$in"


def _expr_uses(expr: Optional[Expr], chain_io: bool) -> FrozenSet[str]:
    """Variables an expression reads, including ``$in`` for ``eof()``."""
    if expr is None:
        return frozenset()
    uses = set(expr.variables())
    if chain_io and "eof" in expr.calls():
        uses.add(INPUT_CURSOR)
    return frozenset(uses)


class CFGBuilder:
    """Builds a :class:`ControlFlowGraph` from a validated program."""

    def __init__(self, fuse_cond_goto: bool = True, chain_io: bool = True) -> None:
        self.fuse_cond_goto = fuse_cond_goto
        self.chain_io = chain_io
        self._cfg = ControlFlowGraph()
        #: Deferred goto edges: (source node id, target label, edge label).
        self._pending_gotos: List[Tuple[int, str, str]] = []
        #: Lexical successor of each statement node (wiring-time next).
        self._lexical_parent: Dict[int, int] = {}
        #: Callee name -> parameter signature (multi-procedure programs).
        self._signatures: Dict[str, object] = {}
        #: Where a ``return`` transfers control: EXIT for main, the head
        #: of the formal-out prelude for a procedure unit — the node a
        #: return-as-jump targets when it crosses a call boundary.
        self._return_target: int = -1

    # ------------------------------------------------------------------
    # Public entry point.
    # ------------------------------------------------------------------

    def build(
        self, program: Program, unit: Optional[str] = None
    ) -> ControlFlowGraph:
        """Build the CFG of one unit of *program*.

        ``unit=None`` builds the main unit (the whole program when there
        are no procedures); ``unit="f"`` builds procedure ``f``'s body,
        wrapped in its formal-in / formal-out parameter nodes.
        """
        diagnostics = check_program(program)
        if diagnostics:
            raise ValidationError(
                "cannot build CFG for an invalid program:\n  "
                + "\n  ".join(diagnostics)
            )
        proc = program.proc_named(unit) if unit else None
        if unit and proc is None:
            raise ValidationError(f"no procedure named {unit!r}")
        if program.procs:
            from repro.sdg.params import signatures as param_signatures

            self._signatures = param_signatures(program)
        body = proc.body if proc is not None else program.body
        formals: List[str] = []
        if proc is not None:
            signature = self._signatures[proc.name]
            formals = list(
                signature.formals if self.chain_io else signature.declared
            )

        cfg = self._cfg
        cfg.unit_name = unit or MAIN_UNIT
        entry = cfg.new_node(NodeKind.ENTRY, text="ENTRY")
        cfg.entry_id = entry.id
        for index, param in enumerate(formals):
            node = cfg.new_node(
                NodeKind.FORMAL_IN,
                line=proc.line,
                defs=frozenset({param}),
                text=f"formal-in {param}",
                call_name=proc.name,
                param=param,
                param_index=index,
            )
            cfg.formal_ins.append(node.id)
        for stmt in body:
            self._create_nodes(stmt)
        for index, param in enumerate(formals):
            node = cfg.new_node(
                NodeKind.FORMAL_OUT,
                line=proc.line,
                uses=frozenset({param}),
                text=f"formal-out {param}",
                call_name=proc.name,
                param=param,
                param_index=index,
            )
            cfg.formal_outs.append(node.id)
        exit_node = cfg.new_node(NodeKind.EXIT, text="EXIT")
        cfg.exit_id = exit_node.id

        # Formal-out prelude: every path out of a procedure — including
        # a `return`, which jumps like any other jump statement — runs
        # the copy-out chain before EXIT, so value-result semantics hold
        # on all exits.
        following = exit_node.id
        for node_id in reversed(cfg.formal_outs):
            cfg.add_edge(node_id, following, EdgeLabel.FALL)
            self._lexical_parent[node_id] = following
            following = node_id
        self._return_target = following

        first = self._wire_sequence(
            body, nxt=following, brk=None, cont=None
        )
        for node_id in reversed(cfg.formal_ins):
            cfg.add_edge(node_id, first, EdgeLabel.FALL)
            self._lexical_parent[node_id] = first
            first = node_id
        cfg.add_edge(entry.id, first, EdgeLabel.TRUE)
        self._resolve_gotos()
        cfg.lexical_parent = dict(self._lexical_parent)
        return cfg

    # ------------------------------------------------------------------
    # Pass 1: lexical node creation.
    # ------------------------------------------------------------------

    def _fusable(self, stmt: Stmt) -> bool:
        """True when *stmt* is ``if (e) goto L;`` and fusion is enabled."""
        return (
            self.fuse_cond_goto
            and isinstance(stmt, If)
            and isinstance(stmt.then_branch, Goto)
            and stmt.then_branch.label is None
            and stmt.else_branch is None
        )

    def _create_nodes(self, stmt: Stmt) -> None:
        cfg = self._cfg
        chain = self.chain_io
        if isinstance(stmt, Skip):
            node = cfg.new_node(NodeKind.SKIP, stmt, stmt.line, text=";")
            cfg.map_stmt(stmt, node.id)
        elif isinstance(stmt, Assign):
            node = cfg.new_node(
                NodeKind.ASSIGN,
                stmt,
                stmt.line,
                defs=frozenset({stmt.target}),
                uses=_expr_uses(stmt.value, chain),
                text=f"{stmt.target} = {pretty_expr(stmt.value)}",
            )
            cfg.map_stmt(stmt, node.id)
        elif isinstance(stmt, Read):
            defs = {stmt.target}
            uses: FrozenSet[str] = frozenset()
            if chain:
                defs.add(INPUT_CURSOR)
                uses = frozenset({INPUT_CURSOR})
            node = cfg.new_node(
                NodeKind.READ,
                stmt,
                stmt.line,
                defs=frozenset(defs),
                uses=uses,
                text=f"read({stmt.target})",
            )
            cfg.map_stmt(stmt, node.id)
        elif isinstance(stmt, Write):
            node = cfg.new_node(
                NodeKind.WRITE,
                stmt,
                stmt.line,
                uses=_expr_uses(stmt.value, chain),
                text=f"write({pretty_expr(stmt.value)})",
            )
            cfg.map_stmt(stmt, node.id)
        elif isinstance(stmt, If):
            if self._fusable(stmt):
                goto = stmt.then_branch
                node = cfg.new_node(
                    NodeKind.CONDGOTO,
                    stmt,
                    stmt.line,
                    uses=_expr_uses(stmt.cond, chain),
                    text=f"if ({pretty_expr(stmt.cond)}) goto {goto.target}",
                    goto_target=goto.target,
                )
                cfg.map_stmt(stmt, node.id)
                cfg.map_stmt(goto, node.id)
            else:
                node = cfg.new_node(
                    NodeKind.PREDICATE,
                    stmt,
                    stmt.line,
                    uses=_expr_uses(stmt.cond, chain),
                    text=f"if ({pretty_expr(stmt.cond)})",
                )
                cfg.map_stmt(stmt, node.id)
                if stmt.then_branch is not None:
                    self._create_nodes(stmt.then_branch)
                if stmt.else_branch is not None:
                    self._create_nodes(stmt.else_branch)
        elif isinstance(stmt, While):
            node = cfg.new_node(
                NodeKind.PREDICATE,
                stmt,
                stmt.line,
                uses=_expr_uses(stmt.cond, chain),
                text=f"while ({pretty_expr(stmt.cond)})",
            )
            cfg.map_stmt(stmt, node.id)
            if stmt.body is not None:
                self._create_nodes(stmt.body)
        elif isinstance(stmt, DoWhile):
            # The body is lexically first; the test node follows it.
            if stmt.body is not None:
                self._create_nodes(stmt.body)
            node = cfg.new_node(
                NodeKind.PREDICATE,
                stmt,
                stmt.line,
                uses=_expr_uses(stmt.cond, chain),
                text=f"do-while ({pretty_expr(stmt.cond)})",
            )
            cfg.map_stmt(stmt, node.id)
        elif isinstance(stmt, For):
            if stmt.init is not None:
                self._create_nodes(stmt.init)
            cond = stmt.cond if stmt.cond is not None else Num(1)
            node = cfg.new_node(
                NodeKind.PREDICATE,
                stmt,
                stmt.line,
                uses=_expr_uses(cond, chain),
                text=f"for ({pretty_expr(cond)})",
            )
            cfg.map_stmt(stmt, node.id)
            if stmt.step is not None:
                self._create_nodes(stmt.step)
            if stmt.body is not None:
                self._create_nodes(stmt.body)
        elif isinstance(stmt, Switch):
            node = cfg.new_node(
                NodeKind.SWITCH,
                stmt,
                stmt.line,
                uses=_expr_uses(stmt.subject, chain),
                text=f"switch ({pretty_expr(stmt.subject)})",
            )
            cfg.map_stmt(stmt, node.id)
            for case in stmt.cases:
                for inner in case.stmts:
                    self._create_nodes(inner)
        elif isinstance(stmt, Break):
            node = cfg.new_node(NodeKind.BREAK, stmt, stmt.line, text="break")
            cfg.map_stmt(stmt, node.id)
        elif isinstance(stmt, Continue):
            node = cfg.new_node(
                NodeKind.CONTINUE, stmt, stmt.line, text="continue"
            )
            cfg.map_stmt(stmt, node.id)
        elif isinstance(stmt, Return):
            node = cfg.new_node(
                NodeKind.RETURN,
                stmt,
                stmt.line,
                uses=_expr_uses(stmt.value, self.chain_io),
                text=(
                    f"return {pretty_expr(stmt.value)}"
                    if stmt.value is not None
                    else "return"
                ),
            )
            cfg.map_stmt(stmt, node.id)
        elif isinstance(stmt, Goto):
            node = cfg.new_node(
                NodeKind.GOTO,
                stmt,
                stmt.line,
                text=f"goto {stmt.target}",
                goto_target=stmt.target,
            )
            cfg.map_stmt(stmt, node.id)
        elif isinstance(stmt, CallStmt):
            self._create_call_nodes(stmt)
        elif isinstance(stmt, Block):
            for inner in stmt.stmts:
                self._create_nodes(inner)
        else:
            raise TypeError(f"unknown statement node: {stmt!r}")

    def _create_call_nodes(self, stmt: CallStmt) -> None:
        """Create the call-site node chain: one actual-in per argument,
        the CALL node, one actual-out per variable argument (plus the
        implicit ``$in`` pair when the callee touches input).

        Actual-in nodes use the argument expression's variables but
        define nothing in the caller (what the callee receives is the
        SDG's business, carried by a param-in edge); actual-out nodes
        define their variable but use nothing (their incoming dependence
        is the param-out edge from the callee's formal-out plus summary
        edges from the call's actual-ins).  Keeping both sides half-open
        is what lets Horwitz–Reps–Binkley summary edges, not a
        worst-case kill set, decide which argument reaches which result.
        """
        from repro.sdg.params import actuals_for

        cfg = self._cfg
        signature = self._signatures[stmt.name]
        specs = actuals_for(stmt, signature)
        if not self.chain_io:
            specs = [spec for spec in specs if spec.expr is not None]
        chain_ids: List[int] = []
        for spec in specs:
            if spec.expr is not None:
                uses = _expr_uses(spec.expr, self.chain_io)
                source = pretty_expr(spec.expr)
            else:
                uses = frozenset({INPUT_CURSOR})
                source = INPUT_CURSOR
            node = cfg.new_node(
                NodeKind.ACTUAL_IN,
                stmt,
                stmt.line,
                uses=uses,
                text=f"{stmt.name}.{spec.param} <- {source}",
                call_name=stmt.name,
                param=spec.param,
                param_index=spec.index,
            )
            chain_ids.append(node.id)
        args = ", ".join(pretty_expr(arg) for arg in stmt.args)
        call_node = cfg.new_node(
            NodeKind.CALL,
            stmt,
            stmt.line,
            text=f"call {stmt.name}({args})",
            call_name=stmt.name,
        )
        cfg.map_stmt(stmt, call_node.id)
        chain_ids.append(call_node.id)
        for spec in specs:
            if spec.out_var is None:
                continue
            node = cfg.new_node(
                NodeKind.ACTUAL_OUT,
                stmt,
                stmt.line,
                defs=frozenset({spec.out_var}),
                text=f"{spec.out_var} <- {stmt.name}.{spec.param}",
                call_name=stmt.name,
                param=spec.param,
                param_index=spec.index,
            )
            chain_ids.append(node.id)
        cfg.call_chains[call_node.id] = chain_ids

    # ------------------------------------------------------------------
    # Pass 2: edge wiring (right-to-left through sequences).
    # ------------------------------------------------------------------

    def _wire_sequence(
        self,
        stmts: List[Stmt],
        nxt: int,
        brk: Optional[int],
        cont: Optional[int],
    ) -> int:
        """Wire a statement sequence; return its entry node id."""
        current = nxt
        for stmt in reversed(stmts):
            current = self._wire(stmt, current, brk, cont)
        return current

    def _wire(
        self, stmt: Stmt, nxt: int, brk: Optional[int], cont: Optional[int]
    ) -> int:
        """Wire one statement; return its entry node id.

        ``nxt`` is where control flows on normal completion — and also,
        by the paper's definition, the statement's immediate lexical
        successor, which we record as the LST parent of the statement's
        primary node.
        """
        cfg = self._cfg
        entry = self._wire_unlabelled(stmt, nxt, brk, cont)
        cfg.map_entry(stmt, entry)
        if stmt.label is not None:
            cfg.label_entry[stmt.label] = entry
        return entry

    def _wire_unlabelled(
        self, stmt: Stmt, nxt: int, brk: Optional[int], cont: Optional[int]
    ) -> int:
        cfg = self._cfg
        if isinstance(stmt, (Skip, Assign, Read, Write)):
            node_id = cfg.node_of(stmt)
            cfg.add_edge(node_id, nxt, EdgeLabel.FALL)
            self._lexical_parent[node_id] = nxt
            return node_id
        if isinstance(stmt, Goto):
            node_id = cfg.node_of(stmt)
            self._pending_gotos.append((node_id, stmt.target, EdgeLabel.JUMP))
            self._lexical_parent[node_id] = nxt
            return node_id
        if isinstance(stmt, Break):
            if brk is None:
                raise ValidationError(
                    f"line {stmt.line}: 'break' outside a loop or switch"
                )
            node_id = cfg.node_of(stmt)
            cfg.add_edge(node_id, brk, EdgeLabel.JUMP)
            self._lexical_parent[node_id] = nxt
            return node_id
        if isinstance(stmt, Continue):
            if cont is None:
                raise ValidationError(
                    f"line {stmt.line}: 'continue' outside a loop"
                )
            node_id = cfg.node_of(stmt)
            cfg.add_edge(node_id, cont, EdgeLabel.JUMP)
            self._lexical_parent[node_id] = nxt
            return node_id
        if isinstance(stmt, Return):
            node_id = cfg.node_of(stmt)
            cfg.add_edge(node_id, self._return_target, EdgeLabel.JUMP)
            self._lexical_parent[node_id] = nxt
            return node_id
        if isinstance(stmt, CallStmt):
            chain_ids = cfg.call_chains[cfg.node_of(stmt)]
            for src, dst in zip(chain_ids, chain_ids[1:]):
                cfg.add_edge(src, dst, EdgeLabel.FALL)
            cfg.add_edge(chain_ids[-1], nxt, EdgeLabel.FALL)
            # The whole chain is one lexical unit: deleting the call
            # statement sends control to the statement's successor.
            for node_id in chain_ids:
                self._lexical_parent[node_id] = nxt
            return chain_ids[0]
        if isinstance(stmt, If):
            node_id = cfg.node_of(stmt)
            self._lexical_parent[node_id] = nxt
            if cfg.nodes[node_id].kind is NodeKind.CONDGOTO:
                self._pending_gotos.append(
                    (node_id, cfg.nodes[node_id].goto_target, EdgeLabel.TRUE)
                )
                cfg.add_edge(node_id, nxt, EdgeLabel.FALSE)
                return node_id
            then_entry = (
                self._wire(stmt.then_branch, nxt, brk, cont)
                if stmt.then_branch is not None
                else nxt
            )
            else_entry = (
                self._wire(stmt.else_branch, nxt, brk, cont)
                if stmt.else_branch is not None
                else nxt
            )
            cfg.add_edge(node_id, then_entry, EdgeLabel.TRUE)
            cfg.add_edge(node_id, else_entry, EdgeLabel.FALSE)
            return node_id
        if isinstance(stmt, While):
            node_id = cfg.node_of(stmt)
            self._lexical_parent[node_id] = nxt
            body_entry = (
                self._wire(stmt.body, node_id, brk=nxt, cont=node_id)
                if stmt.body is not None
                else node_id
            )
            cfg.add_edge(node_id, body_entry, EdgeLabel.TRUE)
            cfg.add_edge(node_id, nxt, EdgeLabel.FALSE)
            return node_id
        if isinstance(stmt, DoWhile):
            node_id = cfg.node_of(stmt)  # the test node
            self._lexical_parent[node_id] = nxt
            body_entry = (
                self._wire(stmt.body, node_id, brk=nxt, cont=node_id)
                if stmt.body is not None
                else node_id
            )
            cfg.add_edge(node_id, body_entry, EdgeLabel.TRUE)
            cfg.add_edge(node_id, nxt, EdgeLabel.FALSE)
            return body_entry
        if isinstance(stmt, For):
            return self._wire_for(stmt, nxt, brk, cont)
        if isinstance(stmt, Switch):
            return self._wire_switch(stmt, nxt, cont)
        if isinstance(stmt, Block):
            return self._wire_sequence(stmt.stmts, nxt, brk, cont)
        raise TypeError(f"unknown statement node: {stmt!r}")

    def _wire_for(
        self, stmt: For, nxt: int, brk: Optional[int], cont: Optional[int]
    ) -> int:
        cfg = self._cfg
        pred_id = cfg.node_of(stmt)
        self._lexical_parent[pred_id] = nxt
        step_id: Optional[int] = None
        if stmt.step is not None:
            step_id = cfg.node_of(stmt.step)
            cfg.map_entry(stmt.step, step_id)
            cfg.add_edge(step_id, pred_id, EdgeLabel.FALL)
            # Deleting the step sends control straight to the test.
            self._lexical_parent[step_id] = pred_id
        loop_back = step_id if step_id is not None else pred_id
        body_entry = (
            self._wire(stmt.body, loop_back, brk=nxt, cont=loop_back)
            if stmt.body is not None
            else loop_back
        )
        cfg.add_edge(pred_id, body_entry, EdgeLabel.TRUE)
        cfg.add_edge(pred_id, nxt, EdgeLabel.FALSE)
        if stmt.init is not None:
            init_id = cfg.node_of(stmt.init)
            cfg.map_entry(stmt.init, init_id)
            cfg.add_edge(init_id, pred_id, EdgeLabel.FALL)
            self._lexical_parent[init_id] = pred_id
            return init_id
        return pred_id

    def _wire_switch(
        self, stmt: Switch, nxt: int, cont: Optional[int]
    ) -> int:
        """Wire a switch with C fall-through semantics.

        Arms are wired last-to-first so each arm's *next* is the entry of
        the following arm (fall-through), and the last arm's is the
        statement after the switch.  ``break`` targets the statement
        after the switch; ``continue`` passes through to the enclosing
        loop.
        """
        cfg = self._cfg
        switch_id = cfg.node_of(stmt)
        self._lexical_parent[switch_id] = nxt
        arm_entries: List[int] = [0] * len(stmt.cases)
        following = nxt
        for index in range(len(stmt.cases) - 1, -1, -1):
            case = stmt.cases[index]
            arm_entries[index] = self._wire_sequence(
                case.stmts, following, brk=nxt, cont=cont
            )
            following = arm_entries[index]
        has_default = False
        for index, case in enumerate(stmt.cases):
            for match in case.matches:
                if match is None:
                    has_default = True
                    cfg.add_edge(switch_id, arm_entries[index], EdgeLabel.DEFAULT)
                else:
                    cfg.add_edge(
                        switch_id, arm_entries[index], EdgeLabel.case(match)
                    )
        if not has_default:
            cfg.add_edge(switch_id, nxt, EdgeLabel.DEFAULT)
        return switch_id

    # ------------------------------------------------------------------
    # Pass 3: goto resolution.
    # ------------------------------------------------------------------

    def _resolve_gotos(self) -> None:
        cfg = self._cfg
        for node_id, target, label in self._pending_gotos:
            if target not in cfg.label_entry:
                raise ValidationError(
                    f"goto to undefined label {target!r}"
                )
            cfg.add_edge(node_id, cfg.label_entry[target], label)


def build_cfg(
    program: Program,
    fuse_cond_goto: bool = True,
    chain_io: bool = True,
    unit: Optional[str] = None,
) -> ControlFlowGraph:
    """Build the control-flow graph of one unit of *program*.

    Parameters
    ----------
    program:
        A parsed (and valid) SL program.
    fuse_cond_goto:
        Fuse ``if (e) goto L;`` into one CONDGOTO node (paper-faithful;
        default on).
    chain_io:
        Chain ``read`` statements through the ``$in`` pseudo-variable
        (default on; see module docstring).
    unit:
        ``None`` for the main unit; a procedure name for that
        procedure's body wrapped in its parameter nodes.
    """
    return CFGBuilder(fuse_cond_goto=fuse_cond_goto, chain_io=chain_io).build(
        program, unit=unit
    )
