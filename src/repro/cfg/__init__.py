"""Control-flow graphs for SL programs.

* :mod:`repro.cfg.graph` — the :class:`ControlFlowGraph` structure.
* :mod:`repro.cfg.builder` — AST to CFG construction, including the
  fusion of ``if (e) goto L;`` into a single CONDGOTO node so node
  numbering matches the paper's.
* :mod:`repro.cfg.augmented` — the Ball–Horwitz / Choi–Ferrante
  *augmented* flowgraph (extra edge from each unconditional jump to its
  immediate lexical successor).
* :mod:`repro.cfg.basic_blocks` — basic-block partition (used by the
  Gallagher baseline).
"""

from repro.cfg.augmented import build_augmented_cfg
from repro.cfg.basic_blocks import BasicBlock, compute_basic_blocks
from repro.cfg.builder import CFGBuilder, build_cfg
from repro.cfg.graph import (
    CFGNode,
    ControlFlowGraph,
    EdgeLabel,
    NodeKind,
)

__all__ = [
    "BasicBlock",
    "CFGBuilder",
    "CFGNode",
    "ControlFlowGraph",
    "EdgeLabel",
    "NodeKind",
    "build_augmented_cfg",
    "build_cfg",
    "compute_basic_blocks",
]
