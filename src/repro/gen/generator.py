"""Seeded random generation of SL programs.

Two generators:

* :func:`generate_structured` — programs whose only jumps are ``break``,
  ``continue``, and ``return``; **every generated program terminates** on
  every input, by construction:

  - ``while``/``do``-``while`` loops are ``!eof()``-guarded and begin
    their body with a ``read`` (each iteration consumes input, and a
    ``continue`` can never skip the read);
  - ``for`` loops count a dedicated variable that the body never writes;

* :func:`generate_unstructured` — flat goto programs in the style of the
  paper's Figs. 3/8/10.  Unconditional gotos only jump *forward*;
  backward jumps are always conditional, so every node can reach EXIT
  (postdominators exist) — but termination is *not* guaranteed, and
  consumers run them under the interpreter's step limit.

* :func:`generate_interprocedural` — multi-procedure programs: a
  structured main unit plus ``proc`` declarations that call each other.
  Procedure ``p<i>`` may only call ``p<j>`` with ``j > i``, so the call
  graph is a DAG and the call depth is bounded by the procedure count;
  with :attr:`GeneratorConfig.allow_recursion` a procedure may also
  call *itself* (always under a conditional), which voids the
  termination guarantee — consumers then rely on the interpreter's
  step limit, as with the unstructured generator.  Every declared
  procedure is called from at least one site.

All generators finish main with a ``write`` per variable, giving every
program obvious slicing criteria; :func:`random_criterion` picks one.
:func:`realize` pretty-prints and re-parses a generated AST so statement
line numbers are meaningful (criteria are line-addressed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    CallStmt,
    Continue,
    DoWhile,
    Expr,
    For,
    Goto,
    If,
    Num,
    ProcDecl,
    Program,
    Read,
    Return,
    Stmt,
    Switch,
    SwitchCase,
    Unary,
    Var,
    While,
    Write,
)
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty

#: Intrinsics the generator may call (all registered defaults).
_CALLABLE = ("f1", "f2", "f3", "g1", "g2", "abs", "sign")

_COMPARISONS = ("<", "<=", ">", ">=", "==", "!=")
_ARITHMETIC = ("+", "-", "*", "/", "%")


@dataclass
class GeneratorConfig:
    """Knobs for program shape and size."""

    max_depth: int = 3          # nesting depth of compound statements
    max_stmts: int = 5          # statements per sequence
    num_vars: int = 4
    expr_depth: int = 2
    allow_loops: bool = True
    allow_switch: bool = True
    allow_return: bool = True
    jump_probability: float = 0.25
    #: Unstructured generator: program length and backward-jump rate.
    flat_length: int = 14
    backward_probability: float = 0.3
    #: Interprocedural generator: procedure count, formals per
    #: procedure, call emission rate, and whether a procedure may call
    #: itself (termination is then no longer guaranteed).
    num_procs: int = 3
    params_per_proc: int = 2
    call_probability: float = 0.3
    allow_recursion: bool = False
    #: When set, overrides the ``v0..vN`` pool — used to generate
    #: procedure bodies over their formals and locals.
    var_pool: Optional[List[str]] = field(default=None)


def _variables(config: GeneratorConfig) -> List[str]:
    if config.var_pool is not None:
        return config.var_pool
    return [f"v{index}" for index in range(config.num_vars)]


def _expr(rng: random.Random, config: GeneratorConfig, depth: int) -> Expr:
    """A random arithmetic expression over the variable pool."""
    if depth <= 0 or rng.random() < 0.35:
        if rng.random() < 0.5:
            return Var(rng.choice(_variables(config)))
        return Num(rng.randint(-5, 9))
    roll = rng.random()
    if roll < 0.15:
        name = rng.choice(_CALLABLE)
        arity = 1
        args = tuple(_expr(rng, config, depth - 1) for _ in range(arity))
        return Call(name=name, args=args)
    if roll < 0.25:
        return Unary(op="-", operand=_expr(rng, config, depth - 1))
    return Binary(
        op=rng.choice(_ARITHMETIC),
        left=_expr(rng, config, depth - 1),
        right=_expr(rng, config, depth - 1),
    )


def _condition(rng: random.Random, config: GeneratorConfig) -> Expr:
    """A random boolean-ish condition."""
    roll = rng.random()
    if roll < 0.1:
        return Unary(op="!", operand=_condition(rng, config))
    if roll < 0.2:
        return Binary(
            op=rng.choice(("&&", "||")),
            left=_condition(rng, config),
            right=_condition(rng, config),
        )
    return Binary(
        op=rng.choice(_COMPARISONS),
        left=_expr(rng, config, 1),
        right=_expr(rng, config, 1),
    )


# ----------------------------------------------------------------------
# Structured programs.
# ----------------------------------------------------------------------


class _StructuredGenerator:
    def __init__(
        self,
        rng: random.Random,
        config: GeneratorConfig,
        callables: Sequence[Tuple[str, int]] = (),
        self_name: Optional[str] = None,
    ) -> None:
        self.rng = rng
        self.config = config
        self._loop_counter = 0
        #: ``(name, arity)`` procedures this unit may ``call``.
        self.callables = list(callables)
        #: When generating a procedure body, its own name — a call to
        #: it (recursion) is always wrapped in a conditional so the
        #: base case is at least syntactically present.
        self.self_name = self_name

    def program(self) -> Program:
        body = self._sequence(
            depth=self.config.max_depth, in_loop=False, in_switch=False
        )
        # A trailing top-level return would make the criterion writes
        # below dead code; drop it.
        while body and isinstance(body[-1], Return):
            body.pop()
        for var in _variables(self.config):
            body.append(Write(value=Var(var)))
        return Program(body=body)

    def _sequence(
        self, depth: int, in_loop: bool, in_switch: bool
    ) -> List[Stmt]:
        rng = self.rng
        count = rng.randint(1, self.config.max_stmts)
        out: List[Stmt] = []
        for _ in range(count):
            stmt = self._statement(depth, in_loop, in_switch)
            out.append(stmt)
            # Anything after an unconditional jump would be dead code,
            # which voids the paper's structured-program properties (and
            # its Fig. 7 ≡ Ball–Horwitz equivalence) — cut the sequence.
            if isinstance(stmt, (Break, Continue, Return, Goto)):
                break
        return out

    def _statement(self, depth: int, in_loop: bool, in_switch: bool) -> Stmt:
        rng = self.rng
        config = self.config
        choices = ["assign", "assign", "read", "write"]
        if self.callables and rng.random() < config.call_probability:
            choices = ["call"]
        elif depth > 0:
            choices += ["if", "if"]
            if config.allow_loops:
                choices += ["while", "for", "dowhile"]
            if config.allow_switch:
                choices.append("switch")
        if rng.random() < config.jump_probability:
            jump_choices = []
            if in_loop:
                jump_choices += ["break", "continue"]
            elif in_switch:
                jump_choices.append("break")
            if config.allow_return:
                jump_choices.append("return")
            if jump_choices:
                choices = [rng.choice(jump_choices)]
        kind = rng.choice(choices)

        if kind == "call":
            name, arity = rng.choice(self.callables)
            args: List[Expr] = []
            for _ in range(arity):
                # Mostly plain variables, so copy-out (and hence an
                # actual-out vertex) exists for most arguments.
                if rng.random() < 0.8:
                    args.append(Var(rng.choice(_variables(config))))
                else:
                    args.append(_expr(rng, config, 1))
            call = CallStmt(name=name, args=args)
            if name == self.self_name:
                return If(cond=_condition(rng, config), then_branch=call)
            return call
        if kind == "assign":
            return Assign(
                target=rng.choice(_variables(config)),
                value=_expr(rng, config, config.expr_depth),
            )
        if kind == "read":
            return Read(target=rng.choice(_variables(config)))
        if kind == "write":
            return Write(value=_expr(rng, config, 1))
        if kind == "break":
            return Break()
        if kind == "continue":
            return Continue()
        if kind == "return":
            return Return(value=_expr(rng, config, 1))
        if kind == "if":
            then_branch = Block(
                stmts=self._sequence(depth - 1, in_loop, in_switch)
            )
            else_branch: Optional[Stmt] = None
            if rng.random() < 0.5:
                else_branch = Block(
                    stmts=self._sequence(depth - 1, in_loop, in_switch)
                )
            return If(
                cond=_condition(rng, config),
                then_branch=then_branch,
                else_branch=else_branch,
            )
        if kind == "while":
            # Termination: !eof()-guarded, body leads with a read.
            body = [Read(target=rng.choice(_variables(config)))]
            body += self._sequence(depth - 1, in_loop=True, in_switch=False)
            return While(
                cond=Unary(op="!", operand=Call(name="eof", args=())),
                body=Block(stmts=body),
            )
        if kind == "dowhile":
            body = [Read(target=rng.choice(_variables(config)))]
            body += self._sequence(depth - 1, in_loop=True, in_switch=False)
            return DoWhile(
                body=Block(stmts=body),
                cond=Unary(op="!", operand=Call(name="eof", args=())),
            )
        if kind == "for":
            counter = f"i{self._loop_counter}"
            self._loop_counter += 1
            bound = self.rng.randint(1, 4)
            body = self._sequence(depth - 1, in_loop=True, in_switch=False)
            return For(
                init=Assign(target=counter, value=Num(0)),
                cond=Binary(op="<", left=Var(counter), right=Num(bound)),
                step=Assign(
                    target=counter,
                    value=Binary(op="+", left=Var(counter), right=Num(1)),
                ),
                body=Block(stmts=body),
            )
        if kind == "switch":
            arm_count = rng.randint(1, 3)
            cases = []
            values = rng.sample(range(0, 6), arm_count)
            for index in range(arm_count):
                stmts = self._sequence(depth - 1, in_loop, in_switch=True)
                if rng.random() < 0.7 and not isinstance(
                    stmts[-1], (Break, Continue, Return)
                ):
                    stmts.append(Break())
                cases.append(
                    SwitchCase(matches=[values[index]], stmts=stmts)
                )
            if rng.random() < 0.4:
                cases.append(
                    SwitchCase(
                        matches=[None],
                        stmts=self._sequence(depth - 1, in_loop, True),
                    )
                )
            return Switch(subject=_expr(rng, config, 1), cases=cases)
        raise AssertionError(f"unhandled kind {kind}")


def generate_structured(
    rng: random.Random, config: Optional[GeneratorConfig] = None
) -> Program:
    """A random structured program (terminating by construction)."""
    return _StructuredGenerator(rng, config or GeneratorConfig()).program()


# ----------------------------------------------------------------------
# Interprocedural programs.
# ----------------------------------------------------------------------


def _called_names(program: Program) -> set:
    return {
        stmt.name
        for stmt in program.all_statements()
        if isinstance(stmt, CallStmt)
    }


def generate_interprocedural(
    rng: random.Random, config: Optional[GeneratorConfig] = None
) -> Program:
    """A random multi-procedure program (see module docstring).

    The call graph is acyclic by construction — ``p<i>`` may only call
    ``p<j>`` with ``j > i`` — so call depth is bounded by
    ``config.num_procs``.  With ``config.allow_recursion`` a procedure
    may additionally call itself under a conditional; termination is
    then *not* guaranteed and consumers must run under a step limit.
    Every declared procedure ends up with at least one call site, so
    no generated program trips the never-called-procedure rejection.
    """
    config = config or GeneratorConfig()
    num_procs = max(1, config.num_procs)
    names = [f"p{index}" for index in range(num_procs)]
    arities = [
        rng.randint(1, max(1, config.params_per_proc)) for _ in names
    ]

    procs: List[ProcDecl] = []
    for index, name in enumerate(names):
        params = [f"a{offset}" for offset in range(arities[index])]
        pool = params + ["t0", "t1"]
        callables = [
            (names[callee], arities[callee])
            for callee in range(index + 1, num_procs)
        ]
        if config.allow_recursion:
            callables.append((name, arities[index]))
        proc_config = replace(
            config,
            var_pool=pool,
            max_depth=min(config.max_depth, 2),
            max_stmts=min(config.max_stmts, 4),
        )
        generator = _StructuredGenerator(
            rng, proc_config, callables=callables, self_name=name
        )
        body = generator._sequence(
            depth=proc_config.max_depth, in_loop=False, in_switch=False
        )
        # A trailing top-level return would make the closing formal
        # write below dead code; drop it (mid-body returns stay).
        while body and isinstance(body[-1], Return):
            body.pop()
        # End by writing a formal, so copy-out carries an effect and
        # the procedure has a summary edge worth computing.
        body.append(
            Assign(
                target=rng.choice(params),
                value=_expr(rng, proc_config, 1),
            )
        )
        procs.append(ProcDecl(name=name, params=params, body=body))

    main_generator = _StructuredGenerator(
        rng,
        replace(config, var_pool=None),
        callables=list(zip(names, arities)),
    )
    main = main_generator.program()
    program = Program(body=main.body, procs=procs)

    # Guarantee every procedure is reachable from some call site: any
    # procedure no unit calls gets a direct call from main, inserted
    # just before the criterion writes.
    missing = [name for name in names if name not in _called_names(program)]
    variables = _variables(replace(config, var_pool=None))
    insert_at = len(main.body) - config.num_vars
    for name in missing:
        arity = arities[names.index(name)]
        call = CallStmt(
            name=name,
            args=[Var(rng.choice(variables)) for _ in range(arity)],
        )
        main.body.insert(insert_at, call)
        insert_at += 1
    return Program(body=main.body, procs=procs)


# ----------------------------------------------------------------------
# Unstructured (flat goto) programs.
# ----------------------------------------------------------------------


def generate_unstructured(
    rng: random.Random, config: Optional[GeneratorConfig] = None
) -> Program:
    """A random flat goto program (see module docstring for guarantees)."""
    config = config or GeneratorConfig()
    length = max(3, config.flat_length)
    variables = _variables(config)

    stmts: List[Stmt] = []
    jumps: List[Tuple[int, int]] = []  # (statement index, target index)
    unconditional_at: List[int] = []
    for index in range(length):
        roll = rng.random()
        if roll < 0.40:
            stmt: Stmt = Assign(
                target=rng.choice(variables),
                value=_expr(rng, config, config.expr_depth),
            )
        elif roll < 0.50:
            stmt = Read(target=rng.choice(variables))
        elif roll < 0.58:
            stmt = Write(value=Var(rng.choice(variables)))
        elif roll < 0.80:
            # Conditional goto; backward allowed (the false edge still
            # falls through, so EXIT stays reachable).
            target = _pick_target(rng, index, length, config, backward_ok=True)
            jumps.append((index, target))
            stmt = If(
                cond=_condition(rng, config),
                then_branch=Goto(target=f"L{target}"),
            )
        else:
            # Unconditional goto: forward only (termination-friendly and
            # keeps every node able to reach EXIT).
            target = _pick_target(rng, index, length, config, backward_ok=False)
            jumps.append((index, target))
            unconditional_at.append(index)
            stmt = Goto(target=f"L{target}")
        stmts.append(stmt)

    for var in variables:
        stmts.append(Write(value=Var(var)))

    # Labels are applied after the trailing writes exist: a forward jump
    # may target position ``length`` (the first write), never itself, so
    # unconditional gotos cannot form an inescapable cycle.
    targeted = {target for _, target in jumps}
    # The statement after an unconditional goto is dead code unless some
    # jump targets it; demote such gotos to conditional ones so the
    # generated corpus stays free of unreachable statements (the paper's
    # equivalence claim assumes that).
    for index in unconditional_at:
        if index + 1 not in targeted:
            goto = stmts[index]
            assert isinstance(goto, Goto)
            stmts[index] = If(cond=_condition(rng, config), then_branch=goto)
    for target in sorted(targeted):
        stmts[target].label = f"L{target}"

    # A goto can still strand a region whose only entries come from
    # *inside* that region (a skipped-over backward target, say).  Reach
    # a fixed point by demoting, in each round, every unconditional goto
    # whose following statement is unreachable; the first dead statement
    # always follows a reachable unconditional goto, so each round makes
    # progress and the result is dead-code free.
    from repro.cfg.builder import build_cfg  # local import: avoid cycle

    program = Program(body=stmts)
    while True:
        cfg = build_cfg(program)
        live = cfg.reachable_from(cfg.entry_id)
        if all(node.id in live for node in cfg.statement_nodes()):
            return program
        changed = False
        for index in range(len(stmts) - 1):
            stmt = stmts[index]
            if (
                isinstance(stmt, Goto)
                and cfg.node_of(stmts[index + 1]) not in live
            ):
                stmts[index] = If(
                    label=stmt.label,
                    cond=_condition(rng, config),
                    then_branch=Goto(target=stmt.target),
                )
                changed = True
        if not changed:  # pragma: no cover - defensive
            return program
        program = Program(body=stmts)


def _pick_target(
    rng: random.Random,
    index: int,
    length: int,
    config: GeneratorConfig,
    backward_ok: bool,
) -> int:
    backward = (
        backward_ok and index > 0 and rng.random() < config.backward_probability
    )
    if backward:
        return rng.randint(0, index - 1)
    # Forward targets may land on position ``length`` — the first of the
    # trailing writes — so even the last flat statement has a forward
    # destination and no unconditional self-loop can arise.
    return rng.randint(index + 1, length)


# ----------------------------------------------------------------------
# Realisation and criteria.
# ----------------------------------------------------------------------


def realize(program: Program) -> Program:
    """Pretty-print and re-parse, so every statement has a real source
    line (criteria are line-addressed)."""
    return parse_program(pretty(program))


def random_criterion(
    rng: random.Random, program: Program
) -> Tuple[int, str]:
    """Pick a (line, var) criterion at one of the program's writes of a
    plain variable (there is always at least one: the generators append
    a write per variable).

    Reachable writes are preferred — ``resolve_criterion`` rejects
    statically dead criteria with ``UnreachableCriterionError``, and
    most consumers (benchmarks, equivalence properties) want a
    criterion the slicers will accept.  Only when *every* write is dead
    does the choice fall back to all of them; callers exercising the
    rejection path can rely on that fallback.
    """
    candidates = [
        (stmt.line, stmt.value.name)
        for stmt in program.statements()
        if isinstance(stmt, Write) and isinstance(stmt.value, Var)
    ]
    if not candidates:
        raise ValueError("program has no write(<var>) statement")
    from repro.cfg.builder import build_cfg

    cfg = build_cfg(program)
    dead_lines = {n.line for n in cfg.unreachable_statements()}
    live = [c for c in candidates if c[0] not in dead_lines]
    return rng.choice(live or candidates)
