"""Random SL program generation for property-based tests and benchmarks."""

from repro.gen.generator import (
    GeneratorConfig,
    generate_interprocedural,
    generate_structured,
    generate_unstructured,
    random_criterion,
    realize,
)

__all__ = [
    "GeneratorConfig",
    "generate_interprocedural",
    "generate_structured",
    "generate_unstructured",
    "random_criterion",
    "realize",
]
