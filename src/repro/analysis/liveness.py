"""Live-variable analysis (backward gen/kill).

Not required by the slicers themselves, but part of the dataflow substrate
(the dead-code example application uses it, and it doubles as a second
instance exercising the generic framework from the other direction).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.analysis.dataflow import (
    BACKWARD,
    DataflowResult,
    GenKillProblem,
    solve_dataflow,
)
from repro.cfg.graph import ControlFlowGraph


def compute_liveness(
    cfg: ControlFlowGraph, engine: Optional[str] = None
) -> DataflowResult[str]:
    """Solve live variables for *cfg*.

    ``result.in_[n]`` is the set of variables live on entry to node ``n``
    (``use(n) ∪ (live-out(n) − def(n))``).  *engine* picks the solver
    (see :func:`repro.analysis.dataflow.solve_dataflow`).
    """
    gen_cache: Dict[int, FrozenSet[str]] = {}
    kill_cache: Dict[int, FrozenSet[str]] = {}
    for node in cfg.sorted_nodes():
        gen_cache[node.id] = frozenset(node.uses)
        kill_cache[node.id] = frozenset(node.defs)

    problem = GenKillProblem(
        gen=gen_cache.__getitem__,
        kill=kill_cache.__getitem__,
        direction=BACKWARD,
    )
    return solve_dataflow(cfg, problem, engine=engine)
