"""Dominator and postdominator trees over control-flow graphs.

The postdominator tree is one of the two structures the paper's algorithm
walks (the other is the lexical successor tree): "S' postdominates S iff
S' is an ancestor of S in the postdominator tree" (§3).

Postdominators are dominators of the reverse graph rooted at EXIT.  Two
details:

* A **virtual ENTRY→EXIT edge** is included by default.  It changes only
  ENTRY's postdominators and is the standard Ferrante–Ottenstein–Warren
  device that makes top-level statements control dependent on the dummy
  entry predicate (the paper's "node 0", footnote 3).
* A statement that cannot reach EXIT (for example the body of ``while
  (1)`` with no break) has **no postdominator**; the paper's algorithms
  are undefined there.  With ``strict=True`` (default) we raise
  :class:`AnalysisError` naming the offending nodes instead of silently
  producing a wrong slice.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.dominance import immediate_dominators
from repro.analysis.lengauer_tarjan import lengauer_tarjan
from repro.analysis.tree import Tree
from repro.cfg.graph import ControlFlowGraph
from repro.lang.errors import AnalysisError

_ALGORITHMS = {
    "iterative": immediate_dominators,
    "lengauer-tarjan": lengauer_tarjan,
}


def _adjacency(
    cfg: ControlFlowGraph,
    extra_edges: Tuple[Tuple[int, int], ...] = (),
) -> Tuple[Dict[int, List[int]], Dict[int, List[int]]]:
    succ: Dict[int, List[int]] = {node_id: [] for node_id in cfg.nodes}
    pred: Dict[int, List[int]] = {node_id: [] for node_id in cfg.nodes}
    for src, dst, _ in cfg.edges():
        succ[src].append(dst)
        pred[dst].append(src)
    for src, dst in extra_edges:
        succ[src].append(dst)
        pred[dst].append(src)
    return succ, pred


def build_dominator_tree(
    cfg: ControlFlowGraph, algorithm: str = "iterative"
) -> Tree:
    """The dominator tree of *cfg*, rooted at ENTRY.

    Only nodes reachable from ENTRY appear (unreachable code has no
    dominator); callers needing every node should consult
    ``cfg.reachable_from(cfg.entry_id)`` first.
    """
    compute = _algorithm(algorithm)
    succ, pred = _adjacency(cfg)
    idom = compute(succ, pred, cfg.entry_id)
    parent = {n: d for n, d in idom.items() if n != cfg.entry_id}
    return Tree(parent, root=cfg.entry_id)


def build_postdominator_tree(
    cfg: ControlFlowGraph,
    algorithm: str = "iterative",
    virtual_entry_exit_edge: bool = True,
    strict: bool = True,
) -> Tree:
    """The postdominator tree of *cfg*, rooted at EXIT.

    Parameters
    ----------
    algorithm:
        ``"iterative"`` (default) or ``"lengauer-tarjan"``.
    virtual_entry_exit_edge:
        Include the FOW dummy edge ENTRY→EXIT (see module docstring).
    strict:
        Raise :class:`AnalysisError` when some node cannot reach EXIT.
        With ``strict=False`` such nodes are simply absent from the tree.
    """
    compute = _algorithm(algorithm)
    extra = ((cfg.entry_id, cfg.exit_id),) if virtual_entry_exit_edge else ()
    succ, pred = _adjacency(cfg, extra)
    # Postdominance = dominance in the reverse graph rooted at EXIT.
    ipdom = compute(pred, succ, cfg.exit_id)
    if strict:
        missing = sorted(set(cfg.nodes) - set(ipdom))
        if missing:
            described = ", ".join(
                f"{node_id} ({cfg.nodes[node_id].text!r} line "
                f"{cfg.nodes[node_id].line})"
                for node_id in missing[:5]
            )
            raise AnalysisError(
                "postdominators are undefined for nodes that cannot reach "
                f"EXIT: {described}"
                + (" ..." if len(missing) > 5 else "")
            )
    parent = {n: d for n, d in ipdom.items() if n != cfg.exit_id}
    return Tree(parent, root=cfg.exit_id)


def _algorithm(name: str):
    try:
        return _ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"unknown dominator algorithm {name!r}; "
            f"expected one of {sorted(_ALGORITHMS)}"
        ) from None
