"""A rooted tree over integer node ids.

Shared by three structures central to the paper: the dominator tree, the
postdominator tree, and the lexical successor tree.  The two queries the
slicing algorithms live on are:

* :meth:`Tree.is_ancestor` — "S' postdominates S iff S' is an ancestor of
  S in the postdominator tree" (paper §3), and likewise for lexical
  succession;
* :meth:`Tree.nearest_ancestor_in` — the *nearest postdominator in the
  slice* / *nearest lexical successor in the slice* tests of the Fig. 7
  and Fig. 12 algorithms.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple


class Tree:
    """An immutable rooted tree given as a child → parent map.

    The root has no entry in ``parent``.  Every other node must reach the
    root through the parent chain; a cycle raises ``ValueError`` at
    construction time.
    """

    def __init__(self, parent: Dict[int, int], root: int) -> None:
        if root in parent:
            raise ValueError(f"root {root} must not have a parent")
        self.root = root
        self._parent = dict(parent)
        self._children: Dict[int, List[int]] = {root: []}
        for child in parent:
            self._children.setdefault(child, [])
        for child, par in parent.items():
            if par not in self._children:
                raise ValueError(
                    f"parent {par} of {child} is not a tree node"
                )
            self._children[par].append(child)
        for kids in self._children.values():
            kids.sort()
        self._depth = self._compute_depths()
        #: node -> its full proper-ancestor chain, filled on demand.
        #: Safe to memoize because the tree is immutable; Fig. 7 walks
        #: the same chains on every traversal round.
        self._chain: Dict[int, Tuple[int, ...]] = {}

    def _compute_depths(self) -> Dict[int, int]:
        depth: Dict[int, int] = {self.root: 0}
        stack = [self.root]
        while stack:
            node = stack.pop()
            for child in self._children[node]:
                depth[child] = depth[node] + 1
                stack.append(child)
        if len(depth) != len(self._children):
            orphans = sorted(set(self._children) - set(depth))
            raise ValueError(
                f"parent map contains a cycle or orphan nodes: {orphans[:5]}"
            )
        return depth

    # ------------------------------------------------------------------

    @property
    def nodes(self) -> Set[int]:
        return set(self._children)

    def __contains__(self, node: int) -> bool:
        return node in self._children

    def __len__(self) -> int:
        return len(self._children)

    def parent_of(self, node: int) -> Optional[int]:
        """The parent of *node*; None for the root."""
        return self._parent.get(node)

    def children_of(self, node: int) -> List[int]:
        """Children of *node*, sorted by id (deterministic traversals)."""
        return list(self._children[node])

    def depth_of(self, node: int) -> int:
        return self._depth[node]

    def ancestor_chain(self, node: int) -> Tuple[int, ...]:
        """Proper ancestors of *node*, nearest first, as a cached tuple.

        Chains are filled bottom-up without recursion (LST chains on
        large flat programs exceed the interpreter's recursion limit),
        reusing every already-cached suffix.  Unknown nodes get the
        empty chain, matching the old generator's behaviour.
        """
        chain = self._chain.get(node)
        if chain is not None:
            return chain
        path: List[int] = []
        current = node
        while current not in self._chain:
            parent = self._parent.get(current)
            if parent is None:
                self._chain[current] = ()
                break
            path.append(current)
            current = parent
        for member in reversed(path):
            parent = self._parent[member]
            self._chain[member] = (parent,) + self._chain[parent]
        return self._chain[node]

    def ancestors(self, node: int) -> Iterator[int]:
        """Proper ancestors of *node*, nearest first, ending at the root."""
        return iter(self.ancestor_chain(node))

    def is_ancestor(self, ancestor: int, node: int, strict: bool = False) -> bool:
        """True when *ancestor* is an ancestor of *node*.

        With ``strict=False`` (the default) a node counts as its own
        ancestor, matching "S' postdominates S" with reflexivity the way
        the paper's nearest-in-slice queries need it.
        """
        if ancestor not in self._children or node not in self._children:
            return False
        if ancestor == node:
            return not strict
        if self._depth[ancestor] >= self._depth[node]:
            return False
        current: Optional[int] = node
        while current is not None and self._depth[current] > self._depth[ancestor]:
            current = self._parent.get(current)
        return current == ancestor

    def nearest_ancestor_in(
        self, node: int, members: Iterable[int]
    ) -> Optional[int]:
        """The nearest *proper* ancestor of *node* contained in *members*.

        This is the paper's "nearest postdominator in Slice" / "nearest
        lexical successor in Slice" primitive.  Returns None when no
        ancestor qualifies (never happens when the root — EXIT — is a
        member, which is how the slicers call it).
        """
        member_set = members if isinstance(members, (set, frozenset)) else set(members)
        for ancestor in self.ancestors(node):
            if ancestor in member_set:
                return ancestor
        return None

    def preorder(self) -> Iterator[int]:
        """Pre-order traversal: every node before any of its children,
        children visited in ascending id order (deterministic, matching
        the paper's Fig. 7 requirement that a node is visited before its
        children)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            # Reverse so the smallest-id child pops first.
            stack.extend(reversed(self._children[node]))

    def edges(self) -> Iterator[tuple]:
        """(parent, child) pairs."""
        for child, parent in self._parent.items():
            yield parent, child

    def as_parent_map(self) -> Dict[int, int]:
        return dict(self._parent)
