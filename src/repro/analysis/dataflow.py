"""A generic worklist dataflow framework over CFGs.

Monotone set-based problems (union meet) are all the reproduction needs:
reaching definitions (forward) feed data dependence; live variables
(backward) support the dead-code example.  Problems are expressed either
as gen/kill pairs (:class:`GenKillProblem`) or an arbitrary monotone
transfer function.

Two engines solve gen/kill problems:

* ``"sets"`` — the original frozenset worklist below, kept as the
  reference implementation;
* ``"bitset"`` — :mod:`repro.analysis.bitset` kernels over integer
  masks, the default.  Only pure gen/kill problems qualify: a problem
  whose class overrides :meth:`GenKillProblem.transfer` may compute
  anything, so it always takes the sets path regardless of engine.

Both produce identical :class:`DataflowResult` frozensets; the
differential property suite holds them to that.
"""

from __future__ import annotations

import contextlib
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Generic, Hashable, Iterator, Optional, TypeVar

from repro.cfg.graph import ControlFlowGraph
from repro.service.resilience import budget_check_nodes, current_budget

T = TypeVar("T", bound=Hashable)

FORWARD = "forward"
BACKWARD = "backward"

ENGINE_SETS = "sets"
ENGINE_BITSET = "bitset"

_default_engine = ENGINE_BITSET


def get_dataflow_engine() -> str:
    """The engine used when :func:`solve_dataflow` gets no explicit one."""
    return _default_engine


def set_dataflow_engine(engine: str) -> None:
    """Set the process-wide default engine (``"sets"`` or ``"bitset"``)."""
    global _default_engine
    if engine not in (ENGINE_SETS, ENGINE_BITSET):
        raise ValueError(f"unknown dataflow engine: {engine!r}")
    _default_engine = engine


@contextlib.contextmanager
def dataflow_engine(engine: str) -> Iterator[None]:
    """Temporarily override the default engine (differential tests)."""
    previous = _default_engine
    set_dataflow_engine(engine)
    try:
        yield
    finally:
        set_dataflow_engine(previous)


@dataclass
class DataflowResult(Generic[T]):
    """Fixed-point values at each node boundary.

    For a forward problem ``in_`` is the value at node entry and ``out``
    at node exit; for a backward problem the names keep their meaning
    (``in_`` still precedes the node in execution order).
    """

    in_: Dict[int, FrozenSet[T]]
    out: Dict[int, FrozenSet[T]]


class GenKillProblem(Generic[T]):
    """A classic gen/kill bit-vector problem with union meet.

    Subclasses (or direct instances) provide ``gen(node_id)`` and
    ``kill(node_id)``; the transfer function is
    ``out = gen ∪ (in − kill)`` (forward) or the mirror image (backward).
    """

    direction: str = FORWARD

    def __init__(
        self,
        gen: Callable[[int], FrozenSet[T]],
        kill: Callable[[int], FrozenSet[T]],
        direction: str = FORWARD,
    ) -> None:
        self._gen = gen
        self._kill = kill
        self.direction = direction

    def gen(self, node_id: int) -> FrozenSet[T]:
        return self._gen(node_id)

    def kill(self, node_id: int) -> FrozenSet[T]:
        return self._kill(node_id)

    def transfer(self, node_id: int, value: FrozenSet[T]) -> FrozenSet[T]:
        return self.gen(node_id) | (value - self.kill(node_id))


def solve_dataflow(
    cfg: ControlFlowGraph,
    problem: GenKillProblem[T],
    engine: Optional[str] = None,
) -> DataflowResult[T]:
    """Solve *problem* to its least fixed point.

    Every node (including ones unreachable from ENTRY — dead code still
    has well-defined local dataflow) starts at the empty set.  *engine*
    defaults to the module-level knob; the bitset engine only engages for
    problems whose transfer is the stock gen/kill one.
    """
    if engine is None:
        engine = _default_engine
    elif engine not in (ENGINE_SETS, ENGINE_BITSET):
        raise ValueError(f"unknown dataflow engine: {engine!r}")
    if (
        engine == ENGINE_BITSET
        and type(problem).transfer is GenKillProblem.transfer
    ):
        return _solve_bitset(cfg, problem)
    budget_check_nodes(len(cfg.nodes), "dataflow")
    budget = current_budget()
    forward = problem.direction == FORWARD
    if forward:
        inputs_of = cfg.pred_ids
        outputs_of = cfg.succ_ids
    else:
        inputs_of = cfg.succ_ids
        outputs_of = cfg.pred_ids

    before: Dict[int, FrozenSet[T]] = {n: frozenset() for n in cfg.nodes}
    after: Dict[int, FrozenSet[T]] = {n: frozenset() for n in cfg.nodes}

    worklist = deque(sorted(cfg.nodes))
    queued = set(worklist)
    while worklist:
        if budget is not None:
            budget.tick("dataflow")
        node = worklist.popleft()
        queued.discard(node)
        merged: FrozenSet[T] = frozenset()
        for source in inputs_of(node):
            merged |= after[source]
        before[node] = merged
        new_after = problem.transfer(node, merged)
        if new_after != after[node]:
            after[node] = new_after
            for target in outputs_of(node):
                if target not in queued:
                    queued.add(target)
                    worklist.append(target)

    if forward:
        return DataflowResult(in_=before, out=after)
    return DataflowResult(in_=after, out=before)


def _fact_order(facts: FrozenSet[T]) -> list:
    # Deterministic universe order even for unsortable/mixed fact types
    # (the generic framework allows any hashable fact).
    try:
        return sorted(facts)
    except TypeError:
        return sorted(facts, key=repr)


def _solve_bitset(
    cfg: ControlFlowGraph, problem: GenKillProblem[T]
) -> DataflowResult[T]:
    """Encode a pure gen/kill problem into masks, solve, decode."""
    from repro.analysis.bitset import BitUniverse, solve_gen_kill_bitset

    node_ids = sorted(cfg.nodes)
    gen_sets = {n: problem.gen(n) for n in node_ids}
    kill_sets = {n: problem.kill(n) for n in node_ids}

    def all_facts():
        for n in node_ids:
            yield from _fact_order(gen_sets[n])
        for n in node_ids:
            yield from _fact_order(kill_sets[n])

    universe: BitUniverse = BitUniverse(all_facts())
    gen = {n: universe.mask_of(gen_sets[n]) for n in node_ids}
    kill = {n: universe.mask_of(kill_sets[n]) for n in node_ids}

    forward = problem.direction == FORWARD
    before, after = solve_gen_kill_bitset(
        cfg, universe, gen, kill, forward=forward
    )
    before_sets = {n: universe.decode(m) for n, m in before.items()}
    after_sets = {n: universe.decode(m) for n, m in after.items()}
    if forward:
        return DataflowResult(in_=before_sets, out=after_sets)
    return DataflowResult(in_=after_sets, out=before_sets)
