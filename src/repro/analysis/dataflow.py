"""A generic worklist dataflow framework over CFGs.

Monotone set-based problems (union meet) are all the reproduction needs:
reaching definitions (forward) feed data dependence; live variables
(backward) support the dead-code example.  Problems are expressed either
as gen/kill pairs (:class:`GenKillProblem`) or an arbitrary monotone
transfer function.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Generic, Hashable, TypeVar

from repro.cfg.graph import ControlFlowGraph
from repro.service.resilience import budget_check_nodes, current_budget

T = TypeVar("T", bound=Hashable)

FORWARD = "forward"
BACKWARD = "backward"


@dataclass
class DataflowResult(Generic[T]):
    """Fixed-point values at each node boundary.

    For a forward problem ``in_`` is the value at node entry and ``out``
    at node exit; for a backward problem the names keep their meaning
    (``in_`` still precedes the node in execution order).
    """

    in_: Dict[int, FrozenSet[T]]
    out: Dict[int, FrozenSet[T]]


class GenKillProblem(Generic[T]):
    """A classic gen/kill bit-vector problem with union meet.

    Subclasses (or direct instances) provide ``gen(node_id)`` and
    ``kill(node_id)``; the transfer function is
    ``out = gen ∪ (in − kill)`` (forward) or the mirror image (backward).
    """

    direction: str = FORWARD

    def __init__(
        self,
        gen: Callable[[int], FrozenSet[T]],
        kill: Callable[[int], FrozenSet[T]],
        direction: str = FORWARD,
    ) -> None:
        self._gen = gen
        self._kill = kill
        self.direction = direction

    def gen(self, node_id: int) -> FrozenSet[T]:
        return self._gen(node_id)

    def kill(self, node_id: int) -> FrozenSet[T]:
        return self._kill(node_id)

    def transfer(self, node_id: int, value: FrozenSet[T]) -> FrozenSet[T]:
        return self.gen(node_id) | (value - self.kill(node_id))


def solve_dataflow(
    cfg: ControlFlowGraph, problem: GenKillProblem[T]
) -> DataflowResult[T]:
    """Solve *problem* to its least fixed point with a FIFO worklist.

    Every node (including ones unreachable from ENTRY — dead code still
    has well-defined local dataflow) starts at the empty set.
    """
    budget_check_nodes(len(cfg.nodes), "dataflow")
    budget = current_budget()
    forward = problem.direction == FORWARD
    if forward:
        inputs_of = cfg.pred_ids
        outputs_of = cfg.succ_ids
    else:
        inputs_of = cfg.succ_ids
        outputs_of = cfg.pred_ids

    before: Dict[int, FrozenSet[T]] = {n: frozenset() for n in cfg.nodes}
    after: Dict[int, FrozenSet[T]] = {n: frozenset() for n in cfg.nodes}

    worklist = deque(sorted(cfg.nodes))
    queued = set(worklist)
    while worklist:
        if budget is not None:
            budget.tick("dataflow")
        node = worklist.popleft()
        queued.discard(node)
        merged: FrozenSet[T] = frozenset()
        for source in inputs_of(node):
            merged |= after[source]
        before[node] = merged
        new_after = problem.transfer(node, merged)
        if new_after != after[node]:
            after[node] = new_after
            for target in outputs_of(node):
                if target not in queued:
                    queued.add(target)
                    worklist.append(target)

    if forward:
        return DataflowResult(in_=before, out=after)
    return DataflowResult(in_=after, out=before)
