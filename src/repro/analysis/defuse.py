"""Def-use chains and the data-dependence graph.

Node U is *data dependent* (flow dependent) on node D when D defines a
variable v, U uses v, and some definition-clear path for v runs from D to
U — i.e. ``Definition(D, v)`` reaches U's entry (paper §2's "node 12 is
data dependent on nodes 2 and 7").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.reaching_defs import Definition, compute_reaching_definitions
from repro.cfg.graph import ControlFlowGraph


class DataDependenceGraph:
    """Edges ``(def node, use node, variable)``."""

    def __init__(self) -> None:
        self._deps: Dict[int, List[Tuple[int, str]]] = {}
        self._uses: Dict[int, List[Tuple[int, str]]] = {}
        self._edge_set: Set[Tuple[int, int, str]] = set()

    def add(self, def_node: int, use_node: int, var: str) -> None:
        if (def_node, use_node, var) in self._edge_set:
            return
        self._edge_set.add((def_node, use_node, var))
        self._deps.setdefault(use_node, []).append((def_node, var))
        self._uses.setdefault(def_node, []).append((use_node, var))

    def defs_reaching(self, use_node: int) -> List[int]:
        """Nodes *use_node* is directly data dependent on (deduped,
        sorted)."""
        return sorted({src for src, _ in self._deps.get(use_node, [])})

    def def_edges_of(self, use_node: int) -> List[Tuple[int, str]]:
        return list(self._deps.get(use_node, []))

    def uses_of(self, def_node: int) -> List[int]:
        """Nodes directly data dependent on *def_node* (deduped, sorted)."""
        return sorted({dst for dst, _ in self._uses.get(def_node, [])})

    def edges(self) -> Iterable[Tuple[int, int, str]]:
        return sorted(self._edge_set)

    def edge_pairs(self) -> Set[Tuple[int, int]]:
        return {(src, dst) for src, dst, _ in self._edge_set}

    def __len__(self) -> int:
        return len(self._edge_set)


def compute_data_dependence(
    cfg: ControlFlowGraph,
    reaching: Optional[object] = None,
) -> DataDependenceGraph:
    """Build the data-dependence graph of *cfg*.

    Pass a precomputed reaching-definitions result to avoid recomputing
    it (the PDG builder does).
    """
    if reaching is None:
        reaching = compute_reaching_definitions(cfg)
    ddg = DataDependenceGraph()
    for node in cfg.sorted_nodes():
        if not node.uses:
            continue
        for definition in reaching.in_[node.id]:
            if definition.var in node.uses:
                ddg.add(definition.node, node.id, definition.var)
    return ddg


def def_use_chains(
    cfg: ControlFlowGraph,
) -> Dict[Definition, List[int]]:
    """Map each definition to the nodes it reaches and that use it."""
    reaching = compute_reaching_definitions(cfg)
    chains: Dict[Definition, List[int]] = {}
    for node in cfg.sorted_nodes():
        for definition in reaching.in_[node.id]:
            if definition.var in node.uses:
                chains.setdefault(definition, []).append(node.id)
    for uses in chains.values():
        uses.sort()
    return chains
