"""The Lengauer–Tarjan dominator algorithm (paper reference [20]).

This is the "simple" O(m log n) variant: semidominator computation over a
DFS spanning tree with path-compressed EVAL/LINK.  It exists alongside the
iterative algorithm for two reasons: the paper cites it as the standard
way to build the (post)dominator trees its slicer consumes, and having two
independent implementations lets the test suite cross-check them (and
``networkx.immediate_dominators``) on thousands of random graphs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def lengauer_tarjan(
    succ: Dict[int, Sequence[int]],
    pred: Dict[int, Sequence[int]],
    root: int,
) -> Dict[int, int]:
    """Immediate dominators of every node reachable from *root*.

    Same contract as :func:`repro.analysis.dominance.immediate_dominators`:
    unreachable nodes are absent, ``idom[root] == root``.
    """
    # DFS numbering (iterative).
    dfnum: Dict[int, int] = {}
    vertex: List[int] = []
    dfs_parent: Dict[int, int] = {}
    stack = [(root, None)]
    while stack:
        node, parent = stack.pop()
        if node in dfnum:
            continue
        dfnum[node] = len(vertex)
        vertex.append(node)
        if parent is not None:
            dfs_parent[node] = parent
        for child in reversed(succ.get(node, ())):
            if child not in dfnum:
                stack.append((child, node))

    semi: Dict[int, int] = dict(dfnum)  # semi[v] as a dfnum, initially dfnum[v]
    ancestor: Dict[int, int] = {}
    label: Dict[int, int] = {v: v for v in vertex}
    bucket: Dict[int, List[int]] = {v: [] for v in vertex}
    idom: Dict[int, int] = {}
    samedom: Dict[int, int] = {}

    def compress(v: int) -> None:
        # Iterative path compression along the forest.
        path = []
        while ancestor[v] in ancestor:
            path.append(v)
            v = ancestor[v]
        for u in reversed(path):
            a = ancestor[u]
            if semi[label[a]] < semi[label[u]]:
                label[u] = label[a]
            ancestor[u] = ancestor[a]

    def evaluate(v: int) -> int:
        if v not in ancestor:
            return v
        compress(v)
        return label[v]

    for i in range(len(vertex) - 1, 0, -1):
        w = vertex[i]
        p = dfs_parent[w]
        # Semidominator of w.
        s = semi[w]
        for v in pred.get(w, ()):
            if v not in dfnum:
                continue  # unreachable predecessor
            if dfnum[v] <= dfnum[w]:
                candidate = dfnum[v]
            else:
                candidate = semi[evaluate(v)]
            s = min(s, candidate)
        semi[w] = s
        bucket[vertex[s]].append(w)
        ancestor[w] = p  # LINK(p, w)
        # Apply the deferred idom computations for p's bucket.
        for v in bucket[p]:
            u = evaluate(v)
            if semi[u] < semi[v]:
                samedom[v] = u
            else:
                idom[v] = p
        bucket[p] = []

    for i in range(1, len(vertex)):
        w = vertex[i]
        if w in samedom:
            idom[w] = idom[samedom[w]]

    idom[root] = root
    return idom
