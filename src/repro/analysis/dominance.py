"""Iterative immediate-dominator computation.

The Cooper–Harvey–Kennedy formulation of the classic dataflow approach
(paper reference [3], the dragon book): process nodes in reverse postorder
and repeatedly intersect the dominator sets of processed predecessors,
representing each set implicitly by its idom pointer.  Simple, and fast in
practice on reducible-ish graphs; the Lengauer–Tarjan implementation in
:mod:`repro.analysis.lengauer_tarjan` provides the near-linear alternative
(paper reference [20]) and a cross-check.

Postdominators (paper §3) are dominators of the reverse graph; see
:mod:`repro.analysis.postdominance`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def _reverse_postorder(succ: Dict[int, Sequence[int]], root: int) -> List[int]:
    """Reverse postorder of the nodes reachable from *root* (iterative
    DFS so deep graphs cannot blow the recursion limit)."""
    visited = {root}
    postorder: List[int] = []
    # Stack of (node, iterator-index) pairs.
    stack: List[List[int]] = [[root, 0]]
    while stack:
        node, index = stack[-1]
        successors = succ.get(node, ())
        if index < len(successors):
            stack[-1][1] += 1
            child = successors[index]
            if child not in visited:
                visited.add(child)
                stack.append([child, 0])
        else:
            postorder.append(node)
            stack.pop()
    postorder.reverse()
    return postorder


def immediate_dominators(
    succ: Dict[int, Sequence[int]],
    pred: Dict[int, Sequence[int]],
    root: int,
) -> Dict[int, int]:
    """Immediate dominators of every node reachable from *root*.

    Parameters
    ----------
    succ / pred:
        Adjacency maps (node → successor / predecessor ids).  Parallel
        edges are fine; unreachable nodes are simply absent from the
        result.
    root:
        The start node; it maps to itself in the returned dict.

    Returns
    -------
    dict
        ``idom[n]`` for every reachable ``n``; ``idom[root] == root``.
    """
    order = _reverse_postorder(succ, root)
    index_of = {node: index for index, node in enumerate(order)}
    idom: Dict[int, int] = {root: root}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index_of[a] > index_of[b]:
                a = idom[a]
            while index_of[b] > index_of[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == root:
                continue
            candidates = [
                p for p in pred.get(node, ()) if p in idom and p in index_of
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return idom
