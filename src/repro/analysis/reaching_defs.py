"""Reaching definitions over an SL CFG.

A *definition* is a (node, variable) pair.  The fixed point of the
forward gen/kill problem gives, for each node, the set of definitions
that may reach its entry — the raw material for def-use chains and the
data-dependence edges of the PDG (paper §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from repro.analysis.dataflow import FORWARD, DataflowResult, GenKillProblem, solve_dataflow
from repro.cfg.graph import ControlFlowGraph


@dataclass(frozen=True, order=True)
class Definition:
    """A definition of *var* at CFG node *node*."""

    node: int
    var: str

    def __repr__(self) -> str:
        return f"Def({self.node}, {self.var})"


def compute_reaching_definitions(
    cfg: ControlFlowGraph,
    engine: Optional[str] = None,
) -> DataflowResult[Definition]:
    """Solve reaching definitions for *cfg*.

    ``result.in_[n]`` holds the definitions reaching the entry of node
    ``n``.  Variables never defined on some path simply have no reaching
    definition there (SL reads of unwritten variables default to zero at
    run time; the slicers treat them as having no data dependence).
    *engine* picks the solver (see :func:`repro.analysis.dataflow.solve_dataflow`).
    """
    all_defs: Dict[str, FrozenSet[Definition]] = {}
    for node in cfg.sorted_nodes():
        for var in node.defs:
            existing = all_defs.get(var, frozenset())
            all_defs[var] = existing | {Definition(node.id, var)}

    gen_cache: Dict[int, FrozenSet[Definition]] = {}
    kill_cache: Dict[int, FrozenSet[Definition]] = {}
    for node in cfg.sorted_nodes():
        gen_cache[node.id] = frozenset(
            Definition(node.id, var) for var in node.defs
        )
        kill: FrozenSet[Definition] = frozenset()
        for var in node.defs:
            kill |= all_defs[var]
        kill_cache[node.id] = kill - gen_cache[node.id]

    problem = GenKillProblem(
        gen=gen_cache.__getitem__,
        kill=kill_cache.__getitem__,
        direction=FORWARD,
    )
    return solve_dataflow(cfg, problem, engine=engine)
