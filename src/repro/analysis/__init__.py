"""Graph and dataflow analyses over SL control-flow graphs.

Everything the slicing algorithms need:

* :mod:`repro.analysis.tree` — rooted-tree utilities shared by the
  dominator, postdominator, and lexical successor trees.
* :mod:`repro.analysis.dominance` — iterative (Cooper–Harvey–Kennedy)
  immediate dominators.
* :mod:`repro.analysis.lengauer_tarjan` — the Lengauer–Tarjan algorithm,
  cross-checked against the iterative one.
* :mod:`repro.analysis.postdominance` — postdominator trees (paper §3).
* :mod:`repro.analysis.control_dependence` — Ferrante–Ottenstein–Warren
  control dependence.
* :mod:`repro.analysis.dataflow` — a generic worklist framework.
* :mod:`repro.analysis.reaching_defs`, :mod:`repro.analysis.liveness` —
  instances of the framework.
* :mod:`repro.analysis.defuse` — def-use chains / data dependence.
* :mod:`repro.analysis.lexical` — the lexical successor tree (paper §3)
  and structured-jump classification (paper §4).
"""

from repro.analysis.control_dependence import (
    ControlDependenceGraph,
    compute_control_dependence,
)
from repro.analysis.dataflow import (
    BACKWARD,
    FORWARD,
    DataflowResult,
    GenKillProblem,
    solve_dataflow,
)
from repro.analysis.defuse import DataDependenceGraph, compute_data_dependence
from repro.analysis.dominance import immediate_dominators
from repro.analysis.lengauer_tarjan import lengauer_tarjan
from repro.analysis.lexical import (
    LexicalSuccessorTree,
    build_lst,
    build_lst_syntactic,
    conflicting_pairs,
    is_structured_jump,
    is_structured_program,
    jump_conflicting_pairs,
    jump_target,
)
from repro.analysis.liveness import compute_liveness
from repro.analysis.postdominance import (
    build_dominator_tree,
    build_postdominator_tree,
)
from repro.analysis.reaching_defs import Definition, compute_reaching_definitions
from repro.analysis.tree import Tree

__all__ = [
    "BACKWARD",
    "ControlDependenceGraph",
    "DataDependenceGraph",
    "DataflowResult",
    "Definition",
    "FORWARD",
    "GenKillProblem",
    "LexicalSuccessorTree",
    "Tree",
    "build_dominator_tree",
    "build_lst",
    "build_lst_syntactic",
    "build_postdominator_tree",
    "compute_control_dependence",
    "compute_data_dependence",
    "compute_liveness",
    "compute_reaching_definitions",
    "conflicting_pairs",
    "immediate_dominators",
    "is_structured_jump",
    "is_structured_program",
    "jump_conflicting_pairs",
    "jump_target",
    "lengauer_tarjan",
    "solve_dataflow",
]
