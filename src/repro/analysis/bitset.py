"""Bitset analysis kernels — dense integer-mask dataflow.

Python's arbitrary-precision integers are free bit vectors: a set of
facts over a fixed, indexed universe is one ``int``, union is ``|``,
intersection is ``&``, and difference is ``& ~kill`` — each a single
C-level operation over machine words instead of a Python-object hash
walk.  The kernels here re-implement the reproduction's hottest
fixed-point loops on that representation:

* :func:`solve_gen_kill_bitset` — the gen/kill union-meet solver behind
  reaching definitions and liveness (the set-based reference lives in
  :mod:`repro.analysis.dataflow`, selectable via its ``engine`` knob);
* :func:`definite_assignment` — the *must* (intersection-meet) dataflow
  behind lint rule SL103;
* :func:`reverse_reachable` — the reaches-EXIT pass behind lint rule
  SL107.

All three decode their fixed points back to the exact frozensets the
set-based reference produces, so callers (and the differential property
suite) see byte-identical results regardless of engine.  Iteration runs
over a reverse-postorder worklist, which converges in a near-minimal
number of passes for reducible flowgraphs.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.cfg.graph import ControlFlowGraph
from repro.service.resilience import current_budget

T = TypeVar("T")

try:
    popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - older interpreters

    def popcount(mask: int) -> int:
        return bin(mask).count("1")


def iter_bits(mask: int) -> Iterator[int]:
    """The set bit positions of a mask, ascending — the shared decode
    kernel for every mask-valued fixed point in the repo."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class BitUniverse:
    """A fixed, indexed universe of facts: fact ↔ bit position.

    The fact order is the construction order (deduplicated), so two
    universes built from the same fact stream assign identical bits —
    which keeps masks comparable and decoding deterministic.
    """

    __slots__ = ("_facts", "_bit")

    def __init__(self, facts: Iterable[T]) -> None:
        self._facts: List[T] = []
        self._bit: Dict[T, int] = {}
        for fact in facts:
            if fact not in self._bit:
                self._bit[fact] = 1 << len(self._facts)
                self._facts.append(fact)

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, fact: T) -> bool:
        return fact in self._bit

    def bit(self, fact: T) -> int:
        """The single-bit mask of *fact* (KeyError when unknown)."""
        return self._bit[fact]

    def mask_of(self, facts: Iterable[T]) -> int:
        mask = 0
        bits = self._bit
        for fact in facts:
            mask |= bits[fact]
        return mask

    @property
    def full_mask(self) -> int:
        return (1 << len(self._facts)) - 1

    def decode(self, mask: int) -> FrozenSet[T]:
        """The fact set a mask denotes."""
        facts = self._facts
        return frozenset(facts[position] for position in iter_bits(mask))


def reverse_postorder(cfg: ControlFlowGraph, forward: bool = True) -> List[int]:
    """CFG node ids in reverse postorder of a DFS from ENTRY (forward
    problems) or EXIT over reversed edges (backward problems).

    Nodes unreachable from the chosen root (dead code still has
    well-defined local dataflow) are appended afterwards in id order, so
    the result is always a permutation of ``cfg.nodes``.
    """
    if forward:
        root, next_of = cfg.entry_id, cfg.succ_ids
    else:
        root, next_of = cfg.exit_id, cfg.pred_ids
    postorder: List[int] = []
    seen = {root}
    stack: List[Tuple[int, Iterable[int]]] = [(root, iter(next_of(root)))]
    while stack:
        node, children = stack[-1]
        advanced = False
        for child in children:
            if child not in seen:
                seen.add(child)
                stack.append((child, iter(next_of(child))))
                advanced = True
                break
        if not advanced:
            postorder.append(node)
            stack.pop()
    order = postorder[::-1]
    order.extend(n for n in sorted(cfg.nodes) if n not in seen)
    return order


def solve_gen_kill_bitset(
    cfg: ControlFlowGraph,
    universe: BitUniverse,
    gen: Dict[int, int],
    kill: Dict[int, int],
    forward: bool,
    phase: str = "dataflow",
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Least fixed point of ``out = gen | (in & ~kill)`` with union meet.

    Returns ``(before, after)`` masks per node, where *before* is the
    value merged from the node's dataflow inputs and *after* the
    transferred value — the caller maps them onto entry/exit order.
    """
    budget = current_budget()
    if budget is not None:
        budget.check_nodes(len(cfg.nodes), phase)
    inputs_of = cfg.pred_ids if forward else cfg.succ_ids
    outputs_of = cfg.succ_ids if forward else cfg.pred_ids

    before = {n: 0 for n in cfg.nodes}
    after = {n: 0 for n in cfg.nodes}
    not_kill = {n: ~kill.get(n, 0) for n in cfg.nodes}

    worklist = deque(reverse_postorder(cfg, forward=forward))
    queued = set(worklist)
    while worklist:
        if budget is not None:
            budget.tick(phase)
        node = worklist.popleft()
        queued.discard(node)
        merged = 0
        for source in inputs_of(node):
            merged |= after[source]
        before[node] = merged
        new_after = gen.get(node, 0) | (merged & not_kill[node])
        if new_after != after[node]:
            after[node] = new_after
            for target in outputs_of(node):
                if target not in queued:
                    queued.add(target)
                    worklist.append(target)
    return before, after


def definite_assignment(
    cfg: ControlFlowGraph, reachable: FrozenSet[int]
) -> Dict[int, FrozenSet[str]]:
    """Definite assignment (lint SL103) as a bitset *must* dataflow.

    A variable is safely initialised at a node only when **every** ENTRY
    path assigns it first, so IN is the intersection (``&``) over
    reachable predecessors; unreachable nodes are excluded entirely.
    Returns ``node id → frozenset of definitely-assigned variables on
    entry`` for every reachable non-ENTRY node — identical to the
    set-based reference previously inlined in
    :func:`repro.lint.rules._check_uninitialized`.
    """
    budget = current_budget()
    all_vars: List[str] = []
    seen_vars = set()
    for node in cfg.statement_nodes():
        for var in sorted(node.defs):
            if var not in seen_vars:
                seen_vars.add(var)
                all_vars.append(var)
    universe = BitUniverse(all_vars)
    full = universe.full_mask
    defs_mask = {
        node.id: universe.mask_of(node.defs) for node in cfg.sorted_nodes()
    }

    assigned_in: Dict[int, int] = {}
    assigned_out: Dict[int, int] = {n: full for n in reachable}
    assigned_out[cfg.entry_id] = 0

    order = [
        n
        for n in reverse_postorder(cfg, forward=True)
        if n in reachable and n != cfg.entry_id
    ]
    worklist = deque(order)
    queued = set(worklist)
    while worklist:
        if budget is not None:
            budget.tick("sl103-definite-assignment")
        node_id = worklist.popleft()
        queued.discard(node_id)
        preds = [p for p in cfg.pred_ids(node_id) if p in reachable]
        if preds:
            in_mask = full
            for pred in preds:
                in_mask &= assigned_out[pred]
        else:
            in_mask = 0
        out_mask = in_mask | defs_mask.get(node_id, 0)
        if (
            assigned_in.get(node_id) == in_mask
            and assigned_out[node_id] == out_mask
        ):
            continue
        assigned_in[node_id] = in_mask
        assigned_out[node_id] = out_mask
        for succ in cfg.succ_ids(node_id):
            if succ in reachable and succ not in queued:
                queued.add(succ)
                worklist.append(succ)
    return {
        node_id: universe.decode(mask)
        for node_id, mask in assigned_in.items()
    }


def reverse_reachable(
    cfg: ControlFlowGraph, target: int
) -> FrozenSet[int]:
    """Node ids from which *target* is reachable (lint SL107's
    reaches-EXIT pass), computed by mask propagation.

    Each node's successor set is one mask; a node reaches the target
    exactly when ``succ_mask & reaches`` is non-zero.  Sweeping nodes in
    postorder (successors before predecessors for the acyclic core)
    converges in one pass plus one confirmation pass on most programs.
    """
    budget = current_budget()
    node_bit = {n: 1 << i for i, n in enumerate(sorted(cfg.nodes))}
    succ_mask = {}
    for node_id in cfg.nodes:
        mask = 0
        for succ in cfg.succ_ids(node_id):
            mask |= node_bit[succ]
        succ_mask[node_id] = mask

    # Postorder of the forward DFS visits successors before their
    # predecessors wherever the graph is acyclic.
    sweep = reverse_postorder(cfg, forward=True)[::-1]
    reaches = node_bit[target]
    changed = True
    while changed:
        if budget is not None:
            budget.tick("sl107-reverse-reachability")
        changed = False
        for node_id in sweep:
            bit = node_bit[node_id]
            if not reaches & bit and succ_mask[node_id] & reaches:
                reaches |= bit
                changed = True
    return frozenset(n for n, bit in node_bit.items() if reaches & bit)


def node_universe(node_ids: Sequence[int]) -> BitUniverse:
    """A universe over CFG/PDG node ids in sorted order (shared helper
    for the closure index and the slice verifier's mask tables)."""
    return BitUniverse(sorted(node_ids))
