"""The lexical successor tree (paper §3) and structured-jump tests
(paper §4).

A statement S' is the *immediate lexical successor* of S when deleting S
(together with its body, for compound statements) sends control to S'.
The relationship forms a tree rooted at EXIT; "S' is a lexical successor
of S" means S' is an ancestor of S in that tree.  The same notion appears
as the "continuation statement" in Ball–Horwitz and the "fall-through
statement" in Choi–Ferrante.

Two constructions are provided:

* :func:`build_lst` wraps the map the CFG builder records while wiring —
  the wiring-time *next* continuation of a statement is, by definition,
  where control goes if the statement is deleted.
* :func:`build_lst_syntactic` rebuilds the tree directly from the AST
  ("in a purely syntax directed manner", §3) without looking at CFG
  edges.  The test suite checks the two agree on every program.

A jump is *structured* when its target — its unique CFG successor — is
one of its lexical successors (§4): ``break``, ``continue`` and
``return`` always are; a ``goto`` is iff it jumps forward along its own
successor chain.  §4's Property 1 (a structured program has no pair
(Ni, Nj) with Ni postdominating Nj and Nj lexically succeeding Ni) is
checked by :func:`conflicting_pairs`, which also predicts when a single
Fig. 7 traversal suffices.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.tree import Tree
from repro.cfg.graph import ControlFlowGraph, NodeKind
from repro.lang.ast_nodes import (
    Block,
    DoWhile,
    For,
    If,
    Program,
    Stmt,
    Switch,
    While,
)


class LexicalSuccessorTree(Tree):
    """A :class:`Tree` rooted at EXIT whose parent relation is
    "immediate lexical successor"."""


def build_lst(cfg: ControlFlowGraph) -> LexicalSuccessorTree:
    """The lexical successor tree recorded during CFG construction."""
    return LexicalSuccessorTree(dict(cfg.lexical_parent), root=cfg.exit_id)


def build_lst_syntactic(
    program: Program, cfg: ControlFlowGraph
) -> LexicalSuccessorTree:
    """Rebuild the LST from the AST alone (cross-check for
    :func:`build_lst`).

    The recursion mirrors the paper's definition: within a sequence each
    statement's successor is the next statement's entry; the last
    statement of an if branch falls to whatever follows the if; the last
    statement of a loop body falls back to the loop's test; switch arms
    fall through into the following arm.
    """
    parents: Dict[int, int] = {}

    def sequence(stmts: List[Stmt], follow: int) -> int:
        current = follow
        for stmt in reversed(stmts):
            current = one(stmt, current)
        return current

    def one(stmt: Stmt, follow: int) -> int:
        """Record parents inside *stmt*; return its entry node."""
        if isinstance(stmt, Block):
            return sequence(stmt.stmts, follow)
        node_id = cfg.node_of(stmt)
        node = cfg.nodes[node_id]
        parents[node_id] = follow
        if node.kind is NodeKind.CONDGOTO:
            return node_id
        if node.kind is NodeKind.CALL:
            # A call statement is one lexical unit: deleting it deletes
            # the whole actual-in / call / actual-out chain, so every
            # chain node's immediate lexical successor is what follows
            # the statement, and the chain head is the entry.
            chain = cfg.call_chains[node_id]
            for member in chain:
                parents[member] = follow
            return chain[0]
        if isinstance(stmt, If):
            if stmt.then_branch is not None:
                one(stmt.then_branch, follow)
            if stmt.else_branch is not None:
                one(stmt.else_branch, follow)
            return node_id
        if isinstance(stmt, While):
            if stmt.body is not None:
                one(stmt.body, node_id)
            return node_id
        if isinstance(stmt, DoWhile):
            entry = node_id
            if stmt.body is not None:
                entry = one(stmt.body, node_id)
            return entry
        if isinstance(stmt, For):
            loop_back = node_id
            if stmt.step is not None:
                step_id = cfg.node_of(stmt.step)
                parents[step_id] = node_id
                loop_back = step_id
            if stmt.body is not None:
                one(stmt.body, loop_back)
            if stmt.init is not None:
                init_id = cfg.node_of(stmt.init)
                parents[init_id] = node_id
                return init_id
            return node_id
        if isinstance(stmt, Switch):
            following = follow
            for case in reversed(stmt.cases):
                following = sequence(case.stmts, following)
            return node_id
        # Simple statements and jumps: nothing nested.
        return node_id

    # Procedure units carry a formal-out prelude between the body and
    # EXIT (and a formal-in prologue before the body): mirror the
    # builder's placement so the cross-check holds per unit.
    follow = cfg.exit_id
    for node_id in reversed(cfg.formal_outs):
        parents[node_id] = follow
        follow = node_id
    entry = sequence(program.body, follow)
    for node_id in reversed(cfg.formal_ins):
        parents[node_id] = entry
        entry = node_id
    return LexicalSuccessorTree(parents, root=cfg.exit_id)


def jump_target(cfg: ControlFlowGraph, jump_id: int) -> int:
    """The node an unconditional jump transfers control to — its unique
    CFG successor."""
    node = cfg.nodes[jump_id]
    if not node.is_jump:
        raise ValueError(f"node {jump_id} is not an unconditional jump")
    succs = cfg.succ_ids(jump_id)
    if len(succs) != 1:
        raise ValueError(
            f"jump node {jump_id} has {len(succs)} successors; "
            "did you pass an augmented CFG?"
        )
    return succs[0]


def is_structured_jump(
    cfg: ControlFlowGraph, lst: LexicalSuccessorTree, jump_id: int
) -> bool:
    """True when the jump's target is also one of its lexical successors
    (paper §4's definition of a structured jump)."""
    return lst.is_ancestor(jump_target(cfg, jump_id), jump_id, strict=True)


def unstructured_jump_ids(
    cfg: ControlFlowGraph, lst: Optional[LexicalSuccessorTree] = None
) -> List[int]:
    """Ids of every jump whose target is not one of its lexical
    successors, in node order.

    Covers both unconditional jumps and fused conditional gotos: a
    ``CONDGOTO`` node (``if (e) goto L;``) transfers control exactly
    like a goto when the predicate holds, so a backward conditional
    goto makes the program unstructured in §4's sense even though the
    node is not in :meth:`ControlFlowGraph.jump_nodes`.  (The slice
    well-formedness verifier caught the earlier unconditional-only
    check accepting such programs and handing the Fig. 12 slicer
    semantically wrong slices.)
    """
    if lst is None:
        lst = build_lst(cfg)
    unstructured: List[int] = []
    for node in cfg.statement_nodes():
        if node.is_jump:
            if not is_structured_jump(cfg, lst, node.id):
                unstructured.append(node.id)
        elif node.kind is NodeKind.CONDGOTO:
            target = cfg.label_entry[node.goto_target]
            if not lst.is_ancestor(target, node.id, strict=True):
                unstructured.append(node.id)
    return unstructured


def is_structured_program(
    cfg: ControlFlowGraph, lst: Optional[LexicalSuccessorTree] = None
) -> bool:
    """True when every jump in *cfg* — unconditional or fused
    conditional goto — is structured."""
    return not unstructured_jump_ids(cfg, lst)


def conflicting_pairs(
    pdt: Tree,
    lst: LexicalSuccessorTree,
    candidates: Optional[List[int]] = None,
) -> Iterator[Tuple[int, int]]:
    """Yield pairs (Ni, Nj) with Ni a proper postdominator of Nj and Nj a
    proper lexical successor of Ni, both drawn from *candidates*.

    §3: "Multiple traversals are required, in general, when a program
    contains [such] a pair"; §4 Property 1: structured programs contain
    none.  The absence of conflicting pairs certifies that a single
    Fig. 7 traversal suffices.

    The paper's quantification is implicitly over the nodes the
    traversal examines — the **unconditional jump statements** (its
    example pair, nodes 4 and 7 of Fig. 10, are both gotos, and it
    declares Figs. 3 and 8 pair-free even though ordinary statements
    there do postdominate lexical predecessors).  Callers should
    therefore pass the jump nodes as *candidates*;
    :func:`jump_conflicting_pairs` does exactly that.  With
    ``candidates=None`` every node common to both trees is considered —
    the literal reading, kept for completeness.
    """
    if candidates is None:
        nodes = sorted(pdt.nodes & lst.nodes)
    else:
        nodes = sorted(set(candidates) & pdt.nodes & lst.nodes)
    node_set = set(nodes)
    for nj in nodes:
        # Ancestors of nj in the postdominator tree are its proper
        # postdominators (candidate Ni); check the lexical condition.
        for ni in pdt.ancestors(nj):
            if ni == pdt.root or ni not in lst or ni not in node_set:
                continue
            if lst.is_ancestor(nj, ni, strict=True):
                yield (ni, nj)


def jump_conflicting_pairs(
    cfg: ControlFlowGraph, pdt: Tree, lst: LexicalSuccessorTree
) -> List[Tuple[int, int]]:
    """Conflicting pairs among the program's unconditional jumps — the
    condition under which the Fig. 7 algorithm may need more than one
    postdominator-tree traversal."""
    jumps = [node.id for node in cfg.jump_nodes()]
    return list(conflicting_pairs(pdt, lst, candidates=jumps))
