"""Ferrante–Ottenstein–Warren control dependence (paper references
[9, 10]).

Node X is control dependent on node Y (via the edge Y→Z, labelled L) when
X postdominates Z but does not postdominate Y.  Operationally: for every
CFG edge (Y, Z, L) where Z does not... rather, where Y's immediate
postdominator is not Z's chain — walk the postdominator tree from Z up to,
but excluding, ipdom(Y), marking every node passed as control dependent on
Y with branch label L.

The virtual ENTRY→EXIT edge (included in the postdominator tree by
default) makes every top-level statement control dependent on ENTRY — the
dummy "node 0" of the paper's control-dependence figures.

Because an unconditional jump has a single successor, nothing is ever
control dependent on it here — precisely the deficiency of conventional
slicing the paper fixes.  (The *augmented* CFG restores those
dependences; see :mod:`repro.cfg.augmented`.)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.tree import Tree
from repro.cfg.graph import ControlFlowGraph, EdgeLabel
from repro.lang.errors import AnalysisError


class ControlDependenceGraph:
    """Edges ``(controller, dependent, branch label)``.

    ``parents_of(n)`` answers "which predicates is n *directly* control
    dependent on?" — the query both the conservative algorithm (Fig. 13)
    and the structured algorithm (Fig. 12) are built on.
    """

    def __init__(self) -> None:
        self._deps: Dict[int, List[Tuple[int, str]]] = {}
        self._controlled: Dict[int, List[Tuple[int, str]]] = {}
        self._edge_set: Set[Tuple[int, int, str]] = set()

    def add(self, controller: int, dependent: int, label: str) -> None:
        if (controller, dependent, label) in self._edge_set:
            return
        self._edge_set.add((controller, dependent, label))
        self._deps.setdefault(dependent, []).append((controller, label))
        self._controlled.setdefault(controller, []).append((dependent, label))

    def parents_of(self, node: int) -> List[int]:
        """Nodes that *node* is directly control dependent on (deduped,
        sorted)."""
        return sorted({src for src, _ in self._deps.get(node, [])})

    def parent_edges_of(self, node: int) -> List[Tuple[int, str]]:
        return list(self._deps.get(node, []))

    def children_of(self, node: int) -> List[int]:
        """Nodes directly control dependent on *node* (deduped, sorted)."""
        return sorted({dst for dst, _ in self._controlled.get(node, [])})

    def edges(self) -> Iterable[Tuple[int, int, str]]:
        return sorted(self._edge_set)

    def edge_pairs(self) -> Set[Tuple[int, int]]:
        """(controller, dependent) pairs without labels."""
        return {(src, dst) for src, dst, _ in self._edge_set}

    def __len__(self) -> int:
        return len(self._edge_set)


def compute_control_dependence(
    cfg: ControlFlowGraph,
    pdt: Tree,
    include_virtual_entry_edge: bool = True,
) -> ControlDependenceGraph:
    """Control dependence of *cfg* given its postdominator tree *pdt*.

    ``pdt`` must have been built with the virtual ENTRY→EXIT edge when
    ``include_virtual_entry_edge`` is set (the default pairing used by
    :func:`repro.pdg.build_pdg`); mixing the two inconsistently yields
    subtly wrong dependences, so we verify the precondition cheaply: with
    the virtual edge, EXIT (not a statement) is ENTRY's parent.
    """
    cdg = ControlDependenceGraph()
    edges = list(cfg.edges())
    if include_virtual_entry_edge:
        if pdt.parent_of(cfg.entry_id) != cfg.exit_id:
            raise AnalysisError(
                "postdominator tree was built without the virtual "
                "ENTRY->EXIT edge; rebuild with "
                "virtual_entry_exit_edge=True or pass "
                "include_virtual_entry_edge=False"
            )
        edges.append((cfg.entry_id, cfg.exit_id, EdgeLabel.FALSE))
    for src, dst, label in edges:
        if src not in pdt or dst not in pdt:
            raise AnalysisError(
                f"edge ({src}, {dst}) touches a node without a "
                "postdominator; the program has statements that cannot "
                "reach EXIT"
            )
        # Z postdominates Y: no dependence from this edge.
        if pdt.is_ancestor(dst, src):
            continue
        stop = pdt.parent_of(src)
        walker = dst
        while walker != stop:
            if walker is None:
                raise AnalysisError(
                    f"postdominator walk from edge ({src}, {dst}) "
                    "escaped the tree; inconsistent inputs"
                )
            cdg.add(src, walker, label)
            walker = pdt.parent_of(walker)
    return cdg
