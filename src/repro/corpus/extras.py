"""Classic slicing-literature programs beyond the paper's own figures.

* ``wordcount`` — Weiser's running example (his 1984 paper's `wc`-like
  program): three outputs with famously different slices.
* ``search`` — a linear search with a ``break``: the canonical case
  where the jump is *semantically essential* for one criterion (the
  first-match index) and conservatively included for another (the
  monotone ``found`` flag).

Formatted like the main corpus: source line N = statement N = CFG node
N.  Expectations here were derived by hand from the def/use and control
structure and locked in after oracle validation (they are regression
anchors, not paper transcriptions).
"""

from __future__ import annotations

from repro.corpus.programs import PaperProgram

WORDCOUNT = PaperProgram(
    name="wordcount",
    figure="Weiser 1984 (classic example)",
    description=(
        "The word-count program: chars/lines/words slices are almost "
        "disjoint apart from the input loop."
    ),
    source="""\
lines = 0;
words = 0;
chars = 0;
inword = 0;
while (!eof()) {
read(c);
chars = chars + 1;
if (c == 10)
lines = lines + 1;
if (c == 32 || c == 10)
inword = 0; else {
if (inword == 0) {
inword = 1;
words = words + 1; } } }
write(lines);
write(words);
write(chars);
""",
    criterion=(16, "words"),
    expectations={
        "agrawal": frozenset({2, 4, 5, 6, 10, 11, 12, 13, 14, 16}),
        "structured": frozenset({2, 4, 5, 6, 10, 11, 12, 13, 14, 16}),
        "conventional": frozenset({2, 4, 5, 6, 10, 11, 12, 13, 14, 16}),
    },
    expected_traversals=0,
    structured=True,
    input_sets=(
        (72, 101, 108, 10, 32, 119, 10),
        (10, 10),
        (32,),
        (),
        (97, 32, 98, 32, 99),
    ),
)

#: The chars and lines criteria for wordcount, with their slices.
WORDCOUNT_CRITERIA = {
    (15, "lines"): frozenset({1, 5, 6, 8, 9, 15}),
    (16, "words"): frozenset({2, 4, 5, 6, 10, 11, 12, 13, 14, 16}),
    (17, "chars"): frozenset({3, 5, 6, 7, 17}),
}


SEARCH = PaperProgram(
    name="search",
    figure="classic first-match search",
    description=(
        "Linear search with a break.  For the first-match index the "
        "break is semantically essential: without it the slice reports "
        "the LAST match.  The conventional slice drops it; every "
        "jump-aware algorithm keeps it."
    ),
    source="""\
read(n);
found = 0;
index = 0;
i = 0;
while (!eof()) {
read(v);
i = i + 1;
if (v == n) {
found = 1;
index = i;
break; } }
write(found);
write(index);
""",
    criterion=(13, "index"),
    expectations={
        "conventional": frozenset({1, 3, 4, 5, 6, 7, 8, 10, 13}),
        "agrawal": frozenset({1, 3, 4, 5, 6, 7, 8, 10, 11, 13}),
        "structured": frozenset({1, 3, 4, 5, 6, 7, 8, 10, 11, 13}),
        "conservative": frozenset({1, 3, 4, 5, 6, 7, 8, 10, 11, 13}),
        "ball-horwitz": frozenset({1, 3, 4, 5, 6, 7, 8, 10, 11, 13}),
    },
    expected_traversals=1,
    structured=True,
    # The double-match input (5, 5, 1, 5) is the one that convicts the
    # conventional slice: first match at i=1, last at i=3.
    input_sets=((5, 5, 1, 5), (5, 1, 2, 5, 9), (5,), (1, 2, 3), ()),
)

EXTRA_PROGRAMS = {
    program.name: program for program in (WORDCOUNT, SEARCH)
}
