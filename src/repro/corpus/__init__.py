"""The paper's example programs, transcribed as a test corpus."""

from repro.corpus.programs import (
    PAPER_PROGRAMS,
    PaperProgram,
    get_program,
    program_names,
)

__all__ = [
    "PAPER_PROGRAMS",
    "PaperProgram",
    "get_program",
    "program_names",
]
