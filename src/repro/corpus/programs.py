"""Every example program from the paper, with its expected results.

Each source is formatted so that **source line N is the paper's statement
N** (closing braces and ``else`` keywords are tucked onto the preceding
statement's line).  Because the CFG builder numbers nodes lexically with
ENTRY = 0, node ids coincide with the paper's statement numbers for all
of these programs — the corpus tests assert ``node.id == node.line`` to
lock that in.

The paper leaves some right-hand sides abstract (``y = ...``); the corpus
picks small concrete constants, which changes nothing about dependences.
Free variables (``c1``, ``c``) are supplied through ``env_sets`` so the
semantic oracle can drive every path.

Expected slices are primary-source data: each set below is transcribed
from the figure or the prose of the paper (references in the
``expectations`` keys; see EXPERIMENTS.md for the mapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple


@dataclass(frozen=True)
class PaperProgram:
    """One corpus entry.

    Attributes
    ----------
    name / figure / description:
        Identification; ``figure`` names the paper figure the source is
        transcribed from.
    source:
        SL text, line N = paper statement N.
    criterion:
        ``(line, var)`` — the slicing criterion the paper uses.
    expectations:
        algorithm name → expected slice as a set of paper statement
        numbers (== node ids == source lines).
    expected_traversals:
        Paper-reported number of productive postdominator-tree
        traversals for the Fig. 7 algorithm (None when unstated).
    expected_labels:
        Paper-reported label re-associations for the Fig. 7 slice.
    must_include / must_exclude:
        algorithm → statements the paper says are (not) in that slice,
        for algorithms where the full slice is not spelled out (Lyle).
    structured:
        Whether the program is structured in the paper's §4 sense.
    input_sets / env_sets:
        Drive the semantic oracle over every interesting path.
    """

    name: str
    figure: str
    description: str
    source: str
    criterion: Tuple[int, str]
    expectations: Dict[str, FrozenSet[int]] = field(default_factory=dict)
    expected_traversals: Optional[int] = None
    expected_labels: Dict[str, int] = field(default_factory=dict)
    must_include: Dict[str, FrozenSet[int]] = field(default_factory=dict)
    must_exclude: Dict[str, FrozenSet[int]] = field(default_factory=dict)
    structured: bool = True
    input_sets: Tuple[Tuple[int, ...], ...] = ()
    env_sets: Tuple[Tuple[Tuple[str, int], ...], ...] = ((),)


FIG1A = PaperProgram(
    name="fig1a",
    figure="Figure 1-a",
    description=(
        "The structured running example (no jumps); its conventional "
        "slice w.r.t. positives on line 12 is Figure 1-b."
    ),
    source="""\
sum = 0;
positives = 0;
while (!eof()) {
read(x);
if (x <= 0)
sum = sum + f1(x); else {
positives = positives + 1;
if (x % 2 == 0)
sum = sum + f2(x); else
sum = sum + f3(x); } }
write(sum);
write(positives);
""",
    criterion=(12, "positives"),
    expectations={
        "conventional": frozenset({2, 3, 4, 5, 7, 12}),
        "agrawal": frozenset({2, 3, 4, 5, 7, 12}),
        "structured": frozenset({2, 3, 4, 5, 7, 12}),
        "conservative": frozenset({2, 3, 4, 5, 7, 12}),
        "ball-horwitz": frozenset({2, 3, 4, 5, 7, 12}),
        "weiser": frozenset({2, 3, 4, 5, 7, 12}),
    },
    expected_traversals=0,
    structured=True,
    input_sets=((), (1, 2, 3), (-1, -2), (5, -5, 4, -4, 0), (2,)),
)


FIG3A = PaperProgram(
    name="fig3a",
    figure="Figure 3-a",
    description=(
        "Goto version of the running example.  The conventional slice "
        "(Fig. 3-b) drops the jumps on lines 7 and 13 and is wrong; the "
        "Fig. 7 algorithm adds them (but not line 11) and re-associates "
        "L14 (Fig. 3-c)."
    ),
    source="""\
sum = 0;
positives = 0;
L3: if (eof()) goto L14;
read(x);
if (x > 0) goto L8;
sum = sum + f1(x);
goto L13;
L8: positives = positives + 1;
if (x % 2 != 0) goto L12;
sum = sum + f2(x);
goto L13;
L12: sum = sum + f3(x);
L13: goto L3;
L14: write(sum);
write(positives);
""",
    criterion=(15, "positives"),
    expectations={
        "conventional": frozenset({2, 3, 4, 5, 8, 15}),
        "agrawal": frozenset({2, 3, 4, 5, 7, 8, 13, 15}),
        "agrawal-lst": frozenset({2, 3, 4, 5, 7, 8, 13, 15}),
        "ball-horwitz": frozenset({2, 3, 4, 5, 7, 8, 13, 15}),
        "weiser": frozenset({2, 3, 4, 5, 8, 15}),
    },
    expected_traversals=1,
    expected_labels={"L14": 15},
    must_include={
        # §5: "it will include all goto statements and all predicates in
        # the example in Figure 3".
        "lyle": frozenset({3, 5, 7, 9, 11, 13}),
    },
    must_exclude={
        "agrawal": frozenset({1, 6, 9, 10, 11, 12, 14}),
    },
    structured=False,
    input_sets=((), (3, -1, 4, 0, 7), (-2, -3), (1, 2, 3, 4, 5, 6), (2, 4)),
)


FIG5A = PaperProgram(
    name="fig5a",
    figure="Figure 5-a",
    description=(
        "Continue version of the running example.  The conventional "
        "slice (Fig. 5-b) lacks the continue on line 7; the new "
        "algorithm includes it but not the one on line 11 (Fig. 5-c)."
    ),
    source="""\
sum = 0;
positives = 0;
while (!eof()) {
read(x);
if (x <= 0) {
sum = sum + f1(x);
continue; }
positives = positives + 1;
if (x % 2 == 0) {
sum = sum + f2(x);
continue; }
sum = sum + f3(x); }
write(sum);
write(positives);
""",
    criterion=(14, "positives"),
    expectations={
        "conventional": frozenset({2, 3, 4, 5, 8, 14}),
        "agrawal": frozenset({2, 3, 4, 5, 7, 8, 14}),
        "structured": frozenset({2, 3, 4, 5, 7, 8, 14}),
        "conservative": frozenset({2, 3, 4, 5, 7, 8, 14}),
        "ball-horwitz": frozenset({2, 3, 4, 5, 7, 8, 14}),
        # §5: Gallagher's rule "will correctly omit the continue
        # statement on line 11, and thus the predicate on line 9".
        "gallagher": frozenset({2, 3, 4, 5, 7, 8, 14}),
    },
    expected_traversals=1,
    must_include={
        # §5: "Lyle's algorithm will also include the continue statement
        # on line 11, and therefore the predicate on line 9".
        "lyle": frozenset({7, 9, 11}),
    },
    must_exclude={
        "agrawal": frozenset({1, 6, 9, 10, 11, 12, 13}),
        "gallagher": frozenset({9, 11}),
    },
    structured=True,
    input_sets=((), (3, -1, 4, 0, 7), (-2, -3), (1, 2, 3, 4, 5, 6), (2, 4)),
)


FIG8A = PaperProgram(
    name="fig8a",
    figure="Figure 8-a",
    description=(
        "Direct-jump goto version: including the goto on line 7 forces "
        "lines 11 and 13 in, which in turn force the predicate on line "
        "9 (Fig. 8-c).  Labels L14 and L12 are re-associated."
    ),
    source="""\
sum = 0;
positives = 0;
L3: if (eof()) goto L14;
read(x);
if (x > 0) goto L8;
sum = sum + f1(x);
goto L3;
L8: positives = positives + 1;
if (x % 2 != 0) goto L12;
sum = sum + f2(x);
goto L3;
L12: sum = sum + f3(x);
goto L3;
L14: write(sum);
write(positives);
""",
    criterion=(15, "positives"),
    expectations={
        "conventional": frozenset({2, 3, 4, 5, 8, 15}),
        "agrawal": frozenset({2, 3, 4, 5, 7, 8, 9, 11, 13, 15}),
        "agrawal-lst": frozenset({2, 3, 4, 5, 7, 8, 9, 11, 13, 15}),
        "ball-horwitz": frozenset({2, 3, 4, 5, 7, 8, 9, 11, 13, 15}),
    },
    expected_traversals=1,
    expected_labels={"L14": 15, "L12": 13},
    must_include={"jiang": frozenset({7})},
    must_exclude={
        # §5: Jiang–Zhou–Robson "will fail to include both jump
        # statements on lines 11 and 13".
        "jiang": frozenset({11, 13}),
    },
    structured=False,
    input_sets=((), (3, -1, 4, 0, 7), (-2, -3), (1, 2, 3, 4, 5, 6), (2, 4)),
)


FIG10A = PaperProgram(
    name="fig10a",
    figure="Figure 10-a",
    description=(
        "The unstructured two-traversal example (adapted by the paper "
        "from Ball & Horwitz): node 4 is only added during the second "
        "pre-order traversal, after node 7's inclusion changes node 4's "
        "nearest lexical successor in the slice."
    ),
    source="""\
if (c1) {
goto L6;
L3: y = 1;
goto L8; }
z = 2;
L6: x = 3;
goto L3;
L8: write(x);
write(y);
write(z);
""",
    criterion=(9, "y"),
    expectations={
        "conventional": frozenset({3, 9}),
        "agrawal": frozenset({1, 2, 3, 4, 7, 9}),
        "agrawal-lst": frozenset({1, 2, 3, 4, 7, 9}),
        "ball-horwitz": frozenset({1, 2, 3, 4, 7, 9}),
    },
    expected_traversals=2,
    expected_labels={"L6": 7, "L8": 9},
    structured=False,
    input_sets=((),),
    env_sets=((("c1", 0),), (("c1", 1),)),
)


FIG14A = PaperProgram(
    name="fig14a",
    figure="Figure 14-a",
    description=(
        "The switch example separating Fig. 12 from Fig. 13: the "
        "simplified algorithm keeps only the break on line 3 "
        "(Fig. 14-b); the conservative one also keeps the breaks on "
        "lines 5 and 7 (Fig. 14-c)."
    ),
    source="""\
switch (c) {
case 1: x = 11;
break;
case 2: y = 22;
break;
case 3: z = 33;
break; }
write(x);
write(y);
write(z);
""",
    criterion=(9, "y"),
    expectations={
        "conventional": frozenset({1, 4, 9}),
        "structured": frozenset({1, 3, 4, 9}),
        "agrawal": frozenset({1, 3, 4, 9}),
        "conservative": frozenset({1, 3, 4, 5, 7, 9}),
        "ball-horwitz": frozenset({1, 3, 4, 9}),
    },
    expected_traversals=1,
    structured=True,
    input_sets=((),),
    env_sets=(
        (("c", 0),),
        (("c", 1),),
        (("c", 2),),
        (("c", 3),),
        (("c", 4),),
    ),
)


FIG16A = PaperProgram(
    name="fig16a",
    figure="Figure 16-a",
    description=(
        "Gallagher's counterexample: no statement of the block labelled "
        "L6 is in the slice, so his rule drops the goto on line 4 and "
        "the 'slice' executes y = f2(x) unconditionally (Fig. 16-b); the "
        "correct slice keeps the goto and re-associates L6 (Fig. 16-c)."
    ),
    source="""\
read(x);
if (x < 0) {
y = f1(x);
goto L6; }
y = f2(x);
L6: if (y < 0) {
z = g1(y);
goto L10; }
z = g2(y);
L10: write(y);
write(z);
""",
    criterion=(10, "y"),
    expectations={
        "conventional": frozenset({1, 2, 3, 5, 10}),
        "gallagher": frozenset({1, 2, 3, 5, 10}),
        "agrawal": frozenset({1, 2, 3, 4, 5, 10}),
        "ball-horwitz": frozenset({1, 2, 3, 4, 5, 10}),
        # Both gotos jump forward along their own lexical-successor
        # chains, so Fig. 16-a is *structured* in the paper's §4 sense
        # and the Fig. 12 algorithm also produces the correct slice.
        "structured": frozenset({1, 2, 3, 4, 5, 10}),
        "conservative": frozenset({1, 2, 3, 4, 5, 10}),
    },
    expected_traversals=1,
    expected_labels={"L6": 10},
    structured=True,
    input_sets=((-5,), (5,), (0,), (-1,), (2,)),
)


PAPER_PROGRAMS: Dict[str, PaperProgram] = {
    program.name: program
    for program in (FIG1A, FIG3A, FIG5A, FIG8A, FIG10A, FIG14A, FIG16A)
}


def get_program(name: str) -> PaperProgram:
    try:
        return PAPER_PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown corpus program {name!r}; "
            f"known: {', '.join(sorted(PAPER_PROGRAMS))}"
        ) from None


def program_names() -> List[str]:
    return sorted(PAPER_PROGRAMS)
