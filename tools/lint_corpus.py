"""Golden-file driver for ``slang check`` over the program corpus.

Lints every corpus program (the paper figures plus the extras) and
compares the full JSON lint payload against the goldens in
``tests/golden/lint/``.  Two modes:

* ``--check`` (the default, and what CI runs): exit 1 on any drift,
  printing a per-program diff summary.
* ``--update``: rewrite the goldens from the current engine output.

The goldens pin the *entire* payload — codes, messages, hints, order —
so any rule change shows up as a reviewable diff rather than a silent
behaviour shift.

Run from the repository root::

    PYTHONPATH=src python tools/lint_corpus.py --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterator, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.corpus import PAPER_PROGRAMS  # noqa: E402
from repro.corpus.extras import EXTRA_PROGRAMS  # noqa: E402
from repro.lint.rules import run_lint  # noqa: E402

GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tests",
    "golden",
    "lint",
)


def corpus_entries() -> Iterator[Tuple[str, str]]:
    """(name, source) for every corpus program, stable order."""
    for name in sorted(PAPER_PROGRAMS):
        yield name, PAPER_PROGRAMS[name].source
    for name in sorted(EXTRA_PROGRAMS):
        yield f"extra_{name}", EXTRA_PROGRAMS[name].source


def current_payloads() -> Dict[str, dict]:
    return {
        name: run_lint(source).payload() for name, source in corpus_entries()
    }


def golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.json")


def update() -> int:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    payloads = current_payloads()
    for name, payload in payloads.items():
        with open(golden_path(name), "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {golden_path(name)}")
    # Drop goldens for programs no longer in the corpus.
    for filename in os.listdir(GOLDEN_DIR):
        stem, ext = os.path.splitext(filename)
        if ext == ".json" and stem not in payloads:
            os.remove(os.path.join(GOLDEN_DIR, filename))
            print(f"removed stale {filename}")
    return 0


def check() -> int:
    failures = 0
    for name, payload in current_payloads().items():
        path = golden_path(name)
        if not os.path.exists(path):
            print(f"MISSING {name}: no golden at {path}")
            failures += 1
            continue
        with open(path, "r", encoding="utf-8") as handle:
            expected = json.load(handle)
        if payload != expected:
            failures += 1
            print(f"DRIFT   {name}:")
            print(f"  expected counts: {expected.get('counts')}")
            print(f"  actual   counts: {payload.get('counts')}")
        else:
            print(f"ok      {name}: {payload['counts'] or 'clean'}")
    if failures:
        print(
            f"\n{failures} corpus program(s) drifted; review the change "
            "and run `python tools/lint_corpus.py --update` if intended."
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--check", action="store_true", help="fail on drift (default)"
    )
    mode.add_argument(
        "--update", action="store_true", help="rewrite the goldens"
    )
    args = parser.parse_args(argv)
    return update() if args.update else check()


if __name__ == "__main__":
    sys.exit(main())
