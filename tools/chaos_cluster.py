"""Chaos drill: SIGKILL a live worker mid-batch, prove nothing breaks.

Boots a supervised cluster, streams a batch of slice requests through
the front door, and — once the pool is demonstrably mid-flight — kills
one worker process with SIGKILL (no goodbye, no drain).  The drill
passes (exit 0) iff:

* every response in the batch is ``ok`` and **correct** (each result is
  compared against a local single-process engine — a crash may slow a
  request down, never change its answer);
* the supervisor detected the death and logged **exactly one** restart;
* the pool is fully healed afterwards (every worker alive, breaker
  closed);
* the durable store served zero corrupted entries (nothing quarantined,
  nothing wrong).

Usage::

    PYTHONPATH=src python tools/chaos_cluster.py --requests 200

This is the CI chaos gate; the integration suite covers the same
machinery at smaller scale with an injected (exit-70) crash instead of
an external SIGKILL.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import signal
import sys
import tempfile
import threading
import time

from repro.corpus import PAPER_PROGRAMS
from repro.service.client import ServiceClient
from repro.service.cluster import ClusterConfig, ClusterSupervisor
from repro.service.engine import SlicingEngine
from repro.service.resilience import RetryPolicy


def build_payloads(count: int):
    entries = sorted(PAPER_PROGRAMS.items())
    payloads = []
    for _, entry in itertools.islice(
        itertools.cycle(entries), count
    ):
        line, var = entry.criterion
        payloads.append(
            {
                "op": "slice",
                "source": entry.source,
                "line": line,
                "var": var,
                "algorithm": "agrawal",
            }
        )
    return payloads


def expected_results(payloads):
    """Ground truth from a local engine: one compute per distinct
    program/criterion, shared across repetitions."""
    expected = []
    memo = {}
    with SlicingEngine() as engine:
        for payload in payloads:
            key = (payload["source"], payload["line"], payload["var"])
            if key not in memo:
                memo[key] = engine.handle_payload(payload)
            expected.append(memo[key])
    return expected


def kill_one_worker_mid_batch(
    supervisor: ClusterSupervisor, threshold: int
) -> int:
    """Wait until the pool has forwarded *threshold* requests, then
    SIGKILL the busiest worker; returns its shard."""
    while True:
        snapshot = supervisor.cluster_snapshot()
        stats = snapshot["worker_stats"]
        if sum(worker["requests"] for worker in stats) >= threshold:
            victim = max(stats, key=lambda worker: worker["requests"])
            os.kill(victim["pid"], signal.SIGKILL)
            return victim["shard"]
        time.sleep(0.02)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument(
        "--kill-after",
        type=int,
        default=20,
        metavar="N",
        help="SIGKILL once N requests have been forwarded",
    )
    args = parser.parse_args(argv)

    payloads = build_payloads(args.requests)
    expected = expected_results(payloads)
    config = ClusterConfig(
        workers=args.workers,
        port=0,
        store_root=tempfile.mkdtemp(prefix="slang-chaos-"),
        heartbeat_interval=0.2,
        backoff_base=0.05,
        verbose=True,
        seed=13,
    )
    supervisor = ClusterSupervisor(config)
    supervisor.start()
    try:
        client = ServiceClient(
            f"http://127.0.0.1:{supervisor.port}",
            retry=RetryPolicy(
                max_retries=8, backoff_seconds=0.2, seed=13
            ),
        )
        responses = [None] * len(payloads)

        def run() -> None:
            responses[:] = client.run_batch(
                payloads, concurrency=args.concurrency
            )

        batch = threading.Thread(target=run)
        start = time.perf_counter()
        batch.start()
        victim = kill_one_worker_mid_batch(supervisor, args.kill_after)
        print(f"[chaos] SIGKILLed worker {victim} mid-batch")
        batch.join()
        elapsed = time.perf_counter() - start

        wrong = sum(
            1
            for response, want in zip(responses, expected)
            if not (
                response
                and response.get("ok")
                and response["result"] == want["result"]
            )
        )
        snapshot = supervisor.cluster_snapshot()
        stats = supervisor.stats_payload()
        store = stats.get("store", {})
        print(
            f"[chaos] batch: {len(responses) - wrong}/{len(responses)} "
            f"correct in {elapsed:.2f}s; restarts logged: "
            f"{supervisor.restarts_logged}; "
            f"client: {json.dumps(client.stats(), sort_keys=True)}"
        )

        failures = []
        if wrong:
            failures.append(f"{wrong} wrong or failed responses")
        if supervisor.restarts_logged != 1:
            failures.append(
                f"expected exactly one logged restart, saw "
                f"{supervisor.restarts_logged}"
            )
        if snapshot["alive"] != args.workers:
            failures.append(
                f"pool not healed: {snapshot['alive']}/{args.workers} "
                "alive"
            )
        if any(
            worker["breaker_open"]
            for worker in snapshot["worker_stats"]
        ):
            failures.append("circuit breaker open after a single crash")
        if store.get("quarantined", 0) != 0:
            failures.append(
                f"store quarantined {store['quarantined']} entries"
            )
        if failures:
            for failure in failures:
                print(f"[chaos] FAIL: {failure}", file=sys.stderr)
            return 1
        print("[chaos] PASS")
        return 0
    finally:
        supervisor.stop(drain=True)


if __name__ == "__main__":
    sys.exit(main())
