"""Repository maintenance scripts (not shipped with the package)."""
