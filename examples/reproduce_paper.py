#!/usr/bin/env python3
"""Regenerate every artefact of the paper's evaluation in one run.

For each figure: the program, the graphs (as summaries), the slices each
algorithm produces, traversal counts, label re-associations — checked
against the transcription in ``repro.corpus`` and printed as a
paper-vs-measured report.  The EXPERIMENTS.md record was produced from
this script's output.

Run:  python examples/reproduce_paper.py
"""

from repro import PAPER_PROGRAMS, SlicingCriterion, analyze_program
from repro.analysis.lexical import jump_conflicting_pairs
from repro.lang.errors import SlangError
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.extract import extract_source
from repro.slicing.registry import get_algorithm


def fmt(nodes) -> str:
    return "{" + ", ".join(str(n) for n in sorted(nodes)) + "}"


def main() -> None:
    print("Reproduction report — Agrawal, PLDI 1994")
    print("=" * 72)
    for name in sorted(PAPER_PROGRAMS):
        entry = PAPER_PROGRAMS[name]
        analysis = analyze_program(entry.source)
        criterion = SlicingCriterion(*entry.criterion)
        print(f"\n{entry.figure}  ({name}) — slice w.r.t. {criterion}")
        print("-" * 72)

        pairs = jump_conflicting_pairs(
            analysis.cfg, analysis.pdt, analysis.lst
        )
        print(f"structured program: {entry.structured}")
        print(f"conflicting jump pairs (multi-traversal risk): {pairs}")

        for algorithm, expected in sorted(entry.expectations.items()):
            result = get_algorithm(algorithm)(analysis, criterion)
            got = frozenset(result.statement_nodes())
            status = "MATCH" if got == expected else "MISMATCH"
            print(
                f"  {algorithm:<13} paper {fmt(expected):<34} "
                f"measured {fmt(got):<34} {status}"
            )
        for algorithm, included in sorted(entry.must_include.items()):
            result = get_algorithm(algorithm)(analysis, criterion)
            ok = included <= set(result.statement_nodes())
            print(
                f"  {algorithm:<13} paper says includes {fmt(included):<20}"
                f" -> {'MATCH' if ok else 'MISMATCH'}"
            )
        for algorithm, excluded in sorted(entry.must_exclude.items()):
            try:
                result = get_algorithm(algorithm)(analysis, criterion)
            except SlangError:
                continue
            ok = not (excluded & set(result.statement_nodes()))
            print(
                f"  {algorithm:<13} paper says excludes {fmt(excluded):<20}"
                f" -> {'MATCH' if ok else 'MISMATCH'}"
            )

        general = agrawal_slice(analysis, criterion)
        if entry.expected_traversals is not None:
            status = (
                "MATCH"
                if general.traversals == entry.expected_traversals
                else "MISMATCH"
            )
            print(
                f"  traversals    paper {entry.expected_traversals}  "
                f"measured {general.traversals}  {status}"
            )
        if entry.expected_labels:
            status = (
                "MATCH"
                if general.label_map == entry.expected_labels
                else "MISMATCH"
            )
            print(
                f"  labels        paper {entry.expected_labels}  "
                f"measured {general.label_map}  {status}"
            )
        print("  extracted slice (Fig. 7 algorithm):")
        for line in extract_source(general).splitlines():
            print(f"    | {line}")


if __name__ == "__main__":
    main()
