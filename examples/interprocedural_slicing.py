#!/usr/bin/env python3
"""Interprocedural slicing: slices that cross procedure calls.

Walks the four multi-procedure programs under
``examples/interprocedural/`` through the SDG subsystem (DESIGN.md
§12):

* ``combine.sl``   — the call-crossing example: the slice for one call
  site's result keeps the callee (including the ``return`` Agrawal's
  rule demands) and drops the unrelated second call;
* ``pipeline.sl``  — a call chain (``main → scale → clamp``) whose
  effect on the criterion travels through summary edges;
* ``guard_return.sl`` — a guarded ``return`` inside the callee: the
  jump controls the copy-out value, so it must be in the slice;
* ``factorial.sl`` — recursion; the summary-edge fixed point and the
  interpreter's step limit both handle the cycle.

Each program is sliced with ``interprocedural`` (the only registered
algorithm that is correct across calls — the others refuse
multi-procedure programs), extracted back to runnable source, and
checked against the interpreter.

Run:  python examples/interprocedural_slicing.py
"""

from pathlib import Path

from repro import (
    SlicingCriterion,
    analyze_program,
    extract_interprocedural_source,
    interprocedural_slice,
    run_source,
    verify_interprocedural,
)

HERE = Path(__file__).resolve().parent / "interprocedural"

#: (file, criterion line, criterion var, input stream)
CASES = [
    ("combine.sl", 5, "s", [7, 3]),
    ("pipeline.sl", 5, "cooked", [21, 30]),
    ("guard_return.sl", 7, "total", [4, -2, 9]),
    ("factorial.sl", 4, "f", [5]),
]


def main() -> None:
    for name, line, var, inputs in CASES:
        source = (HERE / name).read_text()
        print(f"=== {name} · criterion <{var}, line {line}> ===")
        print(source)

        result = interprocedural_slice(
            analyze_program(source), SlicingCriterion(line=line, var=var)
        )
        sdg_result = result.sdg_result
        print(sdg_result.describe())
        print()

        print(f"summary edges: {sdg_result.sdg.summary_edges}")

        diagnostics = verify_interprocedural(sdg_result)
        print(f"verifier diagnostics: {len(diagnostics)}")
        for diagnostic in diagnostics:
            print(f"  {diagnostic}")

        sliced = extract_interprocedural_source(sdg_result)
        print("--- extracted slice ---")
        print(sliced)

        # The slice must agree with the original on the outputs the
        # criterion variable feeds; compare full output streams when
        # the criterion write survives into the slice.
        original = run_source(source, inputs)
        reduced = run_source(sliced, inputs)
        print(f"original outputs: {original.outputs}")
        print(f"slice outputs:    {reduced.outputs}")
        print()


if __name__ == "__main__":
    main()
