read(raw);
read(limit);
call scale(raw, limit, cooked);
call audit(raw, seen);
write(cooked);
write(seen);

proc scale(v, cap, out) {
    out = v * 2;
    call clamp(out, cap);
}

proc clamp(v, cap) {
    if (v > cap) {
        v = cap;
    }
}

proc audit(v, count) {
    if (v != 0) {
        count = count + 1;
    }
}
