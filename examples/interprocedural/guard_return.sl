total = 0;
count = 0;
while (!eof()) {
    read(x);
    call accumulate(x, total, count);
}
write(total);
write(count);

proc accumulate(v, sum, n) {
    if (v < 0) {
        return;
    }
    sum = sum + v;
    n = n + 1;
}
