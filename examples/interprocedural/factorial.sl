read(n);
f = 1;
call fact(n, f);
write(f);

proc fact(n, acc) {
    if (n <= 1) {
        return;
    }
    acc = acc * n;
    n = n - 1;
    call fact(n, acc);
}
