read(x);
read(y);
call combine(x, y, s);
call combine(y, y, t);
write(s);
write(t);

proc combine(a, b, r) {
    r = a * b;
    if (a > b) {
        return;
    }
    r = r + a;
}
