#!/usr/bin/env python3
"""Every slicing algorithm, side by side, over the paper's corpus.

Prints one table per corpus program: algorithm, slice size, the slice as
paper statement numbers, and whether the extracted slice passes the
semantic oracle on the corpus inputs.  This reproduces the comparative
story of the paper's §5 in one screen.

Run:  python examples/algorithm_comparison.py
"""

from repro import PAPER_PROGRAMS, SlicingCriterion, analyze_program
from repro.interp.oracle import TrajectoryMismatch, check_slice_correctness
from repro.lang.errors import SlangError
from repro.slicing.registry import algorithm_names, get_algorithm


def verdict(result, entry) -> str:
    try:
        for env in entry.env_sets:
            check_slice_correctness(
                result, entry.input_sets, initial_env=dict(env)
            )
        return "correct"
    except TrajectoryMismatch:
        return "WRONG"
    except SlangError as error:  # extraction edge cases
        return f"error: {str(error).splitlines()[0][:40]}"


def main() -> None:
    for name in sorted(PAPER_PROGRAMS):
        entry = PAPER_PROGRAMS[name]
        analysis = analyze_program(entry.source)
        criterion = SlicingCriterion(*entry.criterion)
        print(f"=== {name} ({entry.figure}) — criterion {criterion} ===")
        width = max(len(n) for n in algorithm_names())
        for algorithm in algorithm_names():
            slicer = get_algorithm(algorithm)
            try:
                result = slicer(analysis, criterion)
            except SlangError as error:
                reason = str(error).splitlines()[0]
                print(f"  {algorithm:<{width}}  refused ({reason[:52]}...)")
                continue
            members = result.statement_nodes()
            status = verdict(result, entry)
            print(
                f"  {algorithm:<{width}}  {len(members):>2} stmts  "
                f"{status:<8} {members}"
            )
        print()


if __name__ == "__main__":
    main()
