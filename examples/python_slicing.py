#!/usr/bin/env python3
"""Slicing real Python with the paper's structured-jump algorithms.

Python has no goto, but ``break``/``continue``/``return`` are exactly
the structured jumps of the paper's §4 — so the Fig. 12 algorithm (and
the conservative Fig. 13) apply directly.  The front end translates a
Python subset via the stdlib ``ast`` module, slices, and reports the
result as annotated Python source lines.

Run:  python examples/python_slicing.py
"""

from repro.pyfront import slice_python

PYTHON_PROGRAM = """\
total = 0
count = 0
errors = 0
while not eof():
    x = read()
    if x < -100:
        errors += 1
        continue
    if x <= 0:
        total += f1(x)
        continue
    count += 1
    if x % 2 == 0:
        total += f2(x)
        continue
    total += f3(x)
print(total)
print(count)
print(errors)
"""


def main() -> None:
    print("=== Python program ===")
    print(PYTHON_PROGRAM)

    for line, var in [(18, "count"), (17, "total"), (19, "errors")]:
        for algorithm in ("structured", "conservative"):
            report = slice_python(
                PYTHON_PROGRAM, line=line, var=var, algorithm=algorithm
            )
            print(
                f"=== slice w.r.t. <{var}, line {line}> "
                f"({algorithm}, paper Fig. "
                f"{'12' if algorithm == 'structured' else '13'}) ==="
            )
            print(report.annotated)
            print(f"slice lines: {report.lines}\n")

    # The headline observation, on Python instead of C: the `continue`
    # on line 11 IS in the count-slice (it guards the increment), while
    # the one on line 8 is too (errors path also skips count), but the
    # continue on line 15 is NOT (after the increment, it only affects
    # `total`).
    report = slice_python(PYTHON_PROGRAM, line=18, var="count")
    assert 11 in report.lines and 8 in report.lines
    assert 15 not in report.lines
    print("count-slice keeps the guarding continues (8, 11), drops 15 — QED.")


if __name__ == "__main__":
    main()
