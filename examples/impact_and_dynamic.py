#!/usr/bin/env python3
"""Beyond the paper: forward slices, chops, and dynamic slices.

Three of the applications the paper's §1 lists — maintenance,
parallelization, debugging — want more than backward static slices:

* *impact analysis* ("what breaks if I edit this?") is a **forward
  slice**;
* *how does this input reach that output?* is a **chop** (forward ∩
  backward);
* *what went wrong in THIS run?* is a **dynamic slice** — typically far
  smaller than the static slice, because only the dependences actually
  exercised count (Agrawal's companion work, the paper's reference [1]).

Run:  python examples/impact_and_dynamic.py
"""

from repro import (
    SlicingCriterion,
    agrawal_slice,
    analyze_program,
    chop,
    dynamic_slice,
    forward_slice,
)

PROGRAM = """\
sum = 0;
positives = 0;
L3: if (eof()) goto L14;
read(x);
if (x > 0) goto L8;
sum = sum + f1(x);
goto L13;
L8: positives = positives + 1;
if (x % 2 != 0) goto L12;
sum = sum + f2(x);
goto L13;
L12: sum = sum + f3(x);
L13: goto L3;
L14: write(sum);
write(positives);
"""


def show(title, nodes):
    print(f"{title:<46} {sorted(nodes)}")


def main() -> None:
    analysis = analyze_program(PROGRAM)
    print("program: the paper's Fig. 3-a (goto version)\n")

    # Impact analysis: editing read(x) on line 4 affects nearly
    # everything; editing the write on 14 affects nothing else.
    show(
        "forward slice from <x, 4> (edit read(x)):",
        forward_slice(analysis, SlicingCriterion(4, "x")).statement_nodes(),
    )
    show(
        "forward slice from <sum, 14> (edit write):",
        forward_slice(analysis, SlicingCriterion(14, "sum")).statement_nodes(),
    )

    # The chop: how does x read on line 4 reach positives on line 15?
    show(
        "chop <x,4> -> <positives,15>:",
        chop(
            analysis,
            SlicingCriterion(4, "x"),
            SlicingCriterion(15, "positives"),
        ).statement_nodes(),
    )

    # Static vs dynamic, same criterion, three different runs.
    criterion = SlicingCriterion(15, "positives")
    static = agrawal_slice(analysis, criterion)
    show("STATIC slice <positives,15> (Fig. 3-c):", static.statement_nodes())
    for inputs in ([], [-1, -2], [3, -1, 4]):
        dynamic = dynamic_slice(analysis, criterion, inputs=inputs)
        show(
            f"dynamic slice, run on {inputs!r}:",
            dynamic.statement_nodes(),
        )
    print(
        "\nThe empty run's dynamic slice is just the initialisation and\n"
        "the loop guard — none of the loop body ever mattered.  Dynamic\n"
        "slices are always subsets of the static slice (property-tested\n"
        "in tests/property/test_extensions.py)."
    )


if __name__ == "__main__":
    main()
