#!/usr/bin/env python3
"""Slice-based cohesion metrics — the paper's "software metrics"
application (§1; references [21], [23]).

Ott & Thuss: a module is cohesive when the slices of its outputs share
most of their statements.  Two programs below compute the same outputs;
the first interleaves one computation, the second staples two unrelated
ones together — and the metrics see it.  The punchline is the paper's:
on jump-ridden code the metrics are only meaningful if the slicer
handles the jumps (compare the `agrawal` and `conventional` rows).

Run:  python examples/cohesion_metrics.py
"""

from repro import slice_based_metrics
from repro.service.engine import SlicingEngine

COHESIVE = """\
sum = 0;
count = 0;
while (!eof()) {
read(x);
sum = sum + x;
count = count + 1;
}
write(sum);
write(count);
"""

GRAB_BAG = """\
read(n);
squares = n * n;
read(m);
cubes = m * m * m;
write(squares);
write(cubes);
"""

WITH_JUMPS = """\
sum = 0;
positives = 0;
L3: if (eof()) goto L14;
read(x);
if (x > 0) goto L8;
sum = sum + f1(x);
goto L13;
L8: positives = positives + 1;
if (x % 2 != 0) goto L12;
sum = sum + f2(x);
goto L13;
L12: sum = sum + f3(x);
L13: goto L3;
L14: write(sum);
write(positives);
"""


#: One engine for every report: each program is analysed once (the
#: artefacts are criterion-independent) and the per-output slices fan
#: out over the worker pool.
ENGINE = SlicingEngine(workers=4)


def report(title, source, algorithms=("agrawal",)):
    print(f"=== {title} ===")
    analysis = ENGINE.analysis_for(source)
    for algorithm in algorithms:
        metrics = slice_based_metrics(
            analysis, algorithm=algorithm, engine=ENGINE
        )
        print(f"[{algorithm}]")
        print(metrics.describe())
    print()


def main() -> None:
    report("a cohesive accumulator (sum + count share the loop)", COHESIVE)
    report("a grab-bag (two unrelated computations)", GRAB_BAG)
    report(
        "the paper's goto program — metrics with vs without jump handling",
        WITH_JUMPS,
        algorithms=("agrawal", "conventional"),
    )
    print(
        "Note the last pair: the conventional slicer drops the gotos, so\n"
        "its slices (and therefore coverage/overlap) are deflated — slice-\n"
        "based metrics inherit the correctness of the underlying slicer,\n"
        "which is exactly why the paper's algorithms matter downstream."
    )


if __name__ == "__main__":
    try:
        main()
    finally:
        ENGINE.close()
