#!/usr/bin/env python3
"""Quickstart: slice a program with jump statements.

Runs the paper's headline example end to end: the goto version of the
running example (Fig. 3-a), sliced with respect to ``positives`` on its
last line — first with the conventional algorithm (wrong: the slice
loses the jumps that guard the increment), then with Agrawal's Fig. 7
algorithm (right), and finally validates both against the interpreter.

Run:  python examples/quickstart.py
"""

from repro import (
    SlicingCriterion,
    agrawal_slice,
    analyze_program,
    check_slice_correctness,
    conventional_slice,
    extract_source,
)
from repro.interp.oracle import TrajectoryMismatch

PROGRAM = """\
sum = 0;
positives = 0;
L3: if (eof()) goto L14;
read(x);
if (x > 0) goto L8;
sum = sum + f1(x);
goto L13;
L8: positives = positives + 1;
if (x % 2 != 0) goto L12;
sum = sum + f2(x);
goto L13;
L12: sum = sum + f3(x);
L13: goto L3;
L14: write(sum);
write(positives);
"""


def main() -> None:
    # One analysis serves every slicer.
    analysis = analyze_program(PROGRAM)
    criterion = SlicingCriterion(line=15, var="positives")

    print("=== the program (paper Fig. 3-a) ===")
    print(PROGRAM)

    print("=== conventional slice (paper Fig. 3-b — WRONG) ===")
    conventional = conventional_slice(analysis, criterion)
    print(extract_source(conventional))

    print("=== Agrawal's slice (paper Fig. 3-c) ===")
    correct = agrawal_slice(analysis, criterion)
    print(extract_source(correct))
    print(f"postdominator-tree traversals: {correct.traversals}")
    print(f"re-associated labels:          {correct.label_map}")

    # The semantic oracle: run original and slice on shared inputs and
    # compare the value(s) of `positives` observed at line 15.
    inputs = [[3, -1, 4, 0, 7], [-2, -3], [1, 2, 3, 4, 5, 6], []]
    checked = check_slice_correctness(correct, inputs)
    print(f"\nAgrawal slice verified on {checked} input sets.")

    try:
        check_slice_correctness(conventional, inputs)
    except TrajectoryMismatch as mismatch:
        print("Conventional slice diverges, as the paper predicts:")
        print(f"  inputs:   {mismatch.inputs}")
        print(f"  original: {mismatch.expected}")
        print(f"  slice:    {mismatch.actual}")


if __name__ == "__main__":
    main()
