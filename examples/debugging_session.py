#!/usr/bin/env python3
"""A debugging session with slices — the paper's §1 motivation.

Scenario: a report generator shows a wrong order total.  Orders arrive
as amounts, with ``-1`` sentinels separating batches.  The total comes
out 2 short per run and nobody can see why.  Slicing on the wrong output
cuts the program to the handful of statements that can possibly affect
it — and the slice itself exposes the bug: the sentinel guard is *not in
the total's slice at all*, so the -1 sentinels are being added to the
total before the guard skips the rest of the loop body.

Run:  python examples/debugging_session.py
"""

from repro import (
    SlicingCriterion,
    agrawal_slice,
    analyze_program,
    extract_source,
    run_source,
)

PROGRAM = """\
batches = 1;
total = 0;
large = 0;
while (!eof()) {
read(amount);
total = total + amount;
if (amount == -1) {
batches = batches + 1;
continue;
}
if (amount < 100)
continue;
large = large + 1;
}
write(batches);
write(total);
write(large);
"""

ORDERS = [250, 40, -1, 120, 99, -1, 500]


def main() -> None:
    print("=== program under debug ===")
    print(PROGRAM)

    batches, total, large = run_source(PROGRAM, inputs=ORDERS).outputs
    print(f"run on {ORDERS}:")
    print(f"  batches = {batches}, total = {total}, large = {large}")
    print("  expected total = 1009 (250+40+120+99+500) — it is 2 short!\n")

    analysis = analyze_program(PROGRAM)

    print("=== slice w.r.t. <total, line 16> ===")
    slice_total = agrawal_slice(analysis, SlicingCriterion(16, "total"))
    print(extract_source(slice_total))
    print(
        "Read the slice: `total = total + amount` runs on EVERY "
        "iteration —\nthe sentinel check on line 7 is nowhere in the "
        "slice, so it cannot\nbe protecting the total.  The -1 "
        "sentinels are being summed.  Bug found."
    )

    print("\n=== contrast: slice w.r.t. <large, line 17> ===")
    slice_large = agrawal_slice(analysis, SlicingCriterion(17, "large"))
    print(extract_source(slice_large))
    print(
        "For `large`, both continues and both guards ARE in the slice — "
        "they\ndecide whether the increment runs.  Lines: "
        f"{slice_large.lines()}"
    )

    # The point, programmatically: the sentinel guard (line 7) guards
    # `large` but not `total`.
    assert 7 in slice_large.lines()
    assert 7 not in slice_total.lines()
    print(
        "\nline 7 in large-slice:", 7 in slice_large.lines(),
        "| line 7 in total-slice:", 7 in slice_total.lines(),
    )


if __name__ == "__main__":
    main()
