#!/usr/bin/env python3
"""Static analysis: ``slang check`` diagnostics and the slice verifier.

Three demonstrations:

1. lint a buggy program and read the structured diagnostics (stable
   codes, severities, fix hints — the same payload ``slang check
   --format json`` and ``POST /check`` emit);
2. audit a correct slice with the slice well-formedness verifier
   (clean), then audit the conventional slice of the paper's goto
   example and watch the verifier flag the missing jump as SL204 —
   the paper's thesis, mechanised as a checkable condition;
3. use the verifier the way the test suite does: as an oracle over
   every algorithm in the registry.

Run:  python examples/static_analysis.py
"""

from repro import (
    SliceChecker,
    SlicingCriterion,
    analyze_program,
    run_lint,
    verify_result,
)
from repro.corpus import PAPER_PROGRAMS
from repro.lint.slice_check import ALL_CONDITIONS, conditions_for
from repro.slicing.registry import algorithm_names, get_algorithm

BUGGY = """\
read(x);
unused = 1;
if (2 > 1) goto L;
x = x * 10;
L: x = x - 1;
if (x > 0) goto L;
write(x);
write(y);
"""


def main() -> None:
    print("=== 1. slang check on a buggy program ===")
    print(BUGGY)
    report = run_lint(BUGGY)
    print(report.format_text())
    print(f"\ncounts by code: {report.counts()}")

    print("\n=== 2. the slice verifier on the paper's goto example ===")
    entry = PAPER_PROGRAMS["fig3a"]
    analysis = analyze_program(entry.source)
    line, var = entry.criterion
    criterion = SlicingCriterion(line, var)

    correct = get_algorithm("agrawal")(analysis, criterion)
    print(f"agrawal slice:      {verify_result(correct) or 'clean'}")

    wrong = get_algorithm("conventional")(analysis, criterion)
    violations = verify_result(wrong, conditions=ALL_CONDITIONS)
    print("conventional slice under the full audit:")
    for diagnostic in violations:
        print(f"  {diagnostic.format()}")

    print("\n=== 3. the verifier as a registry-wide oracle ===")
    checker = SliceChecker(analysis)
    for name in algorithm_names():
        try:
            result = get_algorithm(name)(analysis, criterion)
        except Exception as error:  # structured-only refusals
            print(f"  {name:<14} refused ({str(error).splitlines()[0][:40]}...)")
            continue
        found = verify_result(result, checker=checker)
        profile = "full" if conditions_for(name) == ALL_CONDITIONS else "closure"
        verdict = "clean" if not found else f"{len(found)} violation(s)"
        print(f"  {name:<14} {profile:<8} audit: {verdict}")


if __name__ == "__main__":
    main()
