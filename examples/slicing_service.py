#!/usr/bin/env python3
"""The slicing service end to end, in-process: one content-addressed
analysis cache amortised over a bulk "slice every criterion" job, the
HTTP server answering the same requests, and the observability
counters that watch both.

The point being demonstrated is the service subsystem's economic
argument (DESIGN.md §7): every artefact `analyze_program` builds is
criterion-independent, so a program analysed once can serve hundreds of
slice queries — cold per-request analysis pays the pipeline every time.

Run:  python examples/slicing_service.py
"""

import json
import threading
import time
import urllib.request

from repro.corpus import PAPER_PROGRAMS
from repro.pdg.builder import analyze_program
from repro.service.cache import AnalysisCache
from repro.service.engine import SlicingEngine, enumerate_criteria
from repro.service.server import make_server
from repro.slicing.registry import get_algorithm


def bulk_job() -> None:
    source = PAPER_PROGRAMS["fig3a"].source
    criteria = enumerate_criteria(analyze_program(source), mode="all")
    print(f"=== bulk job: {len(criteria)} criteria on fig3a ===")

    start = time.perf_counter()
    slicer = get_algorithm("agrawal")
    for criterion in criteria:
        slicer(analyze_program(source), criterion)  # cold: re-analyse
    cold = time.perf_counter() - start

    engine = SlicingEngine(cache=AnalysisCache(capacity=8), workers=4)
    start = time.perf_counter()
    payloads = engine.bulk_slice(source, criteria=criteria)
    warm = time.perf_counter() - start

    print(f"cold (analyse per request): {cold * 1000:7.1f} ms")
    print(f"warm (cached analysis):     {warm * 1000:7.1f} ms")
    print(f"speedup: {cold / warm:.1f}x; cache: {engine.cache.stats()}")
    sizes = sorted({payload["size"] for payload in payloads})
    print(f"slice sizes seen across criteria: {sizes}")
    engine.close()


def http_round_trip() -> None:
    print("\n=== the same request over HTTP ===")
    server = make_server(port=0)
    port = server.server_address[1]
    threading.Thread(target=server.serve_forever, daemon=True).start()

    body = json.dumps(
        {
            "source": PAPER_PROGRAMS["fig3a"].source,
            "line": 15,
            "var": "positives",
        }
    ).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/slice", data=body, method="POST"
    )
    with urllib.request.urlopen(request) as response:
        print(response.read().decode("utf-8"))
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/stats"
    ) as response:
        stats = json.loads(response.read())
    print(f"requests: {stats['requests']}; cache: {stats['cache']}")
    server.shutdown()
    server.server_close()
    server.engine.close()


if __name__ == "__main__":
    bulk_job()
    http_round_trip()
